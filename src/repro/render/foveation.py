"""Foveated-rendering geometry (paper Eq. 1, Fig. 3).

Maps the tracker's error to region sizes:

    r_f = rho * d * tan(theta_i + delta_theta)

Larger tracking error -> larger full-resolution foveal disc -> more rays.
The display model places the gaze at the frame center (the paper's
footnote-1 worst case, giving the maximum region radius) and computes the
pixel population of the foveal / inter-foveal / peripheral regions, from
which the effective ray count follows using the paper's resolution drops
(4x for inter-foveal, 16x for peripheral).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.render.scene import Resolution
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class FoveationConfig:
    """Region parameters (paper defaults: theta_i = 5 deg foveal
    eccentricity, inter-foveal extends 20 deg beyond the foveal angle,
    4x / 16x resolution drops, ~96 deg horizontal display FOV)."""

    theta_foveal_deg: float = 5.0
    inter_extra_deg: float = 20.0
    inter_drop: float = 4.0
    peripheral_drop: float = 16.0
    display_hfov_deg: float = 96.0

    def __post_init__(self) -> None:
        check_in_range("theta_foveal_deg", self.theta_foveal_deg, 0.1, 45.0)
        check_positive("inter_extra_deg", self.inter_extra_deg)
        check_positive("inter_drop", self.inter_drop)
        check_positive("peripheral_drop", self.peripheral_drop)
        check_in_range("display_hfov_deg", self.display_hfov_deg, 30.0, 180.0)


@dataclass(frozen=True)
class RegionPixels:
    """Pixel population of the three rendering regions."""

    foveal: float
    inter: float
    peripheral: float

    @property
    def total(self) -> float:
        return self.foveal + self.inter + self.peripheral


def theta_f(theta_i_deg: float, delta_theta_deg: float) -> float:
    """Resulting foveal eccentricity under tracking error (Eq. 1)."""
    if delta_theta_deg < 0:
        raise ValueError(f"tracking error must be non-negative, got {delta_theta_deg}")
    return theta_i_deg + delta_theta_deg


def eccentricity_radius_px(theta_deg: float, resolution: Resolution, hfov_deg: float) -> float:
    """Pixel radius subtended by eccentricity ``theta_deg`` on the display.

    This is Eq. 1 with rho*d expressed through the display geometry:
    a flat display spanning ``hfov_deg`` horizontally over ``width`` px has
    rho*d = (width/2) / tan(hfov/2).
    """
    if theta_deg >= 90.0:
        return float("inf")
    rho_d = (resolution.width / 2.0) / math.tan(math.radians(hfov_deg / 2.0))
    return rho_d * math.tan(math.radians(theta_deg))


def _disc_pixel_count(radius_px: float, resolution: Resolution, grid_step: int = 4) -> float:
    """Pixels of a gaze-centred disc clipped to the display rectangle,
    by grid integration (exact to ~grid_step^2 pixels)."""
    if radius_px <= 0:
        return 0.0
    half_w, half_h = resolution.width / 2.0, resolution.height / 2.0
    if radius_px >= math.hypot(half_w, half_h):
        return float(resolution.pixels)
    xs = np.arange(-half_w + grid_step / 2.0, half_w, grid_step)
    ys = np.arange(-half_h + grid_step / 2.0, half_h, grid_step)
    xx, yy = np.meshgrid(xs, ys)
    inside = (xx * xx + yy * yy) <= radius_px * radius_px
    return float(inside.sum()) * grid_step * grid_step


def region_pixels(
    delta_theta_deg: float,
    resolution: Resolution,
    config: "FoveationConfig | None" = None,
) -> RegionPixels:
    """Pixel populations of the three regions for a given tracking error."""
    config = config or FoveationConfig()
    angle_f = theta_f(config.theta_foveal_deg, delta_theta_deg)
    angle_i = angle_f + config.inter_extra_deg
    r_f = eccentricity_radius_px(angle_f, resolution, config.display_hfov_deg)
    r_i = eccentricity_radius_px(angle_i, resolution, config.display_hfov_deg)
    foveal = _disc_pixel_count(r_f, resolution)
    inter_total = _disc_pixel_count(r_i, resolution)
    inter = max(inter_total - foveal, 0.0)
    peripheral = max(resolution.pixels - inter_total, 0.0)
    return RegionPixels(foveal=foveal, inter=inter, peripheral=peripheral)


def effective_rays(regions: RegionPixels, config: "FoveationConfig | None" = None) -> float:
    """Ray budget of a foveated frame: full-rate foveal pixels plus
    down-rated inter-foveal and peripheral pixels."""
    config = config or FoveationConfig()
    return (
        regions.foveal
        + regions.inter / config.inter_drop
        + regions.peripheral / config.peripheral_drop
    )


def foveated_ray_fraction(
    delta_theta_deg: float,
    resolution: Resolution,
    config: "FoveationConfig | None" = None,
) -> float:
    """Fraction of full-resolution rays a foveated frame needs."""
    config = config or FoveationConfig()
    regions = region_pixels(delta_theta_deg, resolution, config)
    return effective_rays(regions, config) / resolution.pixels
