"""Rendering-pipeline latency composition (paper §5.3, Fig. 11).

Builds on the GPU model and foveation geometry to produce the rendering
latencies the TFR system model consumes:

* full-resolution frames (the Fig. 1 / green-bar comparator),
* foveated frames under a given tracking error (Eq. 1 -> ray budget),
* saccade frames (uniform 4x4-downsampled rendering, §7),
* the hierarchical R1/R2 split that enables gaze-parallel rendering
  (Fig. 11 c/d): R1 covers the whole frame at the peripheral rate and
  needs no gaze; R2 upgrades the foveal and inter-foveal regions once the
  gaze arrives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.render.foveation import FoveationConfig, effective_rays, region_pixels
from repro.render.gpu import GpuModel
from repro.render.scene import Resolution, SceneProfile
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FoveatedBreakdown:
    """Latency decomposition of one foveated frame."""

    total_s: float
    r1_s: float
    r2_s: float
    rays: float

    def __post_init__(self) -> None:
        check_positive("total_s", self.total_s)


class RenderPipeline:
    """Latency model for one (scene, resolution) rendering context."""

    def __init__(
        self,
        gpu: "GpuModel | None" = None,
        foveation: "FoveationConfig | None" = None,
    ):
        self.gpu = gpu or GpuModel()
        self.foveation = foveation or FoveationConfig()

    # ------------------------------------------------------------------
    def full_latency(self, scene: SceneProfile, resolution: Resolution) -> float:
        """Full-resolution frame latency in seconds."""
        return self.gpu.full_resolution_latency(resolution, scene)

    def saccade_latency(self, scene: SceneProfile, resolution: Resolution) -> float:
        """Frame latency during a saccade: uniform 4x4-downsampled render
        (1/16 of the rays; §7: 'rendered with a low resolution with a
        downsampling ratio of 4 x 4')."""
        rays = resolution.pixels / 16.0
        return self.gpu.frame_latency(rays, scene)

    def foveated_latency(
        self,
        scene: SceneProfile,
        resolution: Resolution,
        delta_theta_deg: float,
    ) -> FoveatedBreakdown:
        """Foveated frame latency under tracking error ``delta_theta_deg``.

        The R1/R2 split follows Fig. 11(d): R1 renders every pixel at the
        peripheral rate (gaze-independent), R2 adds the remaining rays for
        the inter-foveal and foveal regions.  R1 + R2 ray counts always sum
        to the plain foveated ray budget, so sequential and parallel
        schedules render identical work.
        """
        cfg = self.foveation
        regions = region_pixels(delta_theta_deg, resolution, cfg)
        rays_total = effective_rays(regions, cfg)
        r1_rays = resolution.pixels / cfg.peripheral_drop
        r2_rays = rays_total - r1_rays
        r1 = self.gpu.frame_latency(r1_rays, scene)
        # R2 continues the same frame: no second fixed overhead.
        r2 = self.gpu.ray_latency(max(r2_rays, 0.0), scene)
        return FoveatedBreakdown(
            total_s=r1 + r2, r1_s=r1, r2_s=r2, rays=rays_total
        )

    # ------------------------------------------------------------------
    def speedup_vs_full(
        self, scene: SceneProfile, resolution: Resolution, delta_theta_deg: float
    ) -> float:
        """Full-resolution latency divided by foveated latency."""
        full = self.full_latency(scene, resolution)
        fov = self.foveated_latency(scene, resolution, delta_theta_deg).total_s
        return full / fov
