"""Rendering substrate: foveation geometry, GPU latency model, scene
suite, pipeline composition, and a real mini path tracer."""

from repro.render.foveation import (
    FoveationConfig,
    RegionPixels,
    effective_rays,
    eccentricity_radius_px,
    foveated_ray_fraction,
    region_pixels,
    theta_f,
)
from repro.render.gpu import GpuModel
from repro.render.pipeline import FoveatedBreakdown, RenderPipeline
from repro.render.raytrace import MiniScene, PathTracer, Sphere
from repro.render.scene import (
    RES_1080P,
    RES_1440P,
    RES_720P,
    RESOLUTIONS,
    Resolution,
    SceneProfile,
    SCENES,
    resolution_by_name,
    scene_by_name,
)

__all__ = [
    "FoveationConfig",
    "RegionPixels",
    "effective_rays",
    "eccentricity_radius_px",
    "foveated_ray_fraction",
    "region_pixels",
    "theta_f",
    "GpuModel",
    "FoveatedBreakdown",
    "RenderPipeline",
    "MiniScene",
    "PathTracer",
    "Sphere",
    "RES_1080P",
    "RES_1440P",
    "RES_720P",
    "RESOLUTIONS",
    "Resolution",
    "SceneProfile",
    "SCENES",
    "resolution_by_name",
    "scene_by_name",
]
