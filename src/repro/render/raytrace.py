"""A real (small) numpy ray tracer.

The latency experiments use the analytical GPU model, but a downstream
user of a foveated-rendering library also needs to *see* foveation.
This module renders actual images: spheres and a ground plane with
Lambertian shading, hard shadows, and one mirror bounce, plus a foveated
mode that renders the foveal region at full resolution, the inter-foveal
region at 1/4 ray density, and the periphery at 1/16 — the exact budget
of :mod:`repro.render.foveation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Sphere:
    center: tuple[float, float, float]
    radius: float
    color: tuple[float, float, float]
    reflectivity: float = 0.0

    def __post_init__(self) -> None:
        check_positive("radius", self.radius)


@dataclass
class MiniScene:
    """Sphere-and-plane scene description."""

    spheres: list[Sphere] = field(default_factory=list)
    plane_y: float = -1.0
    plane_colors: tuple = ((0.85, 0.85, 0.85), (0.25, 0.25, 0.3))
    light_pos: tuple[float, float, float] = (4.0, 6.0, -3.0)
    ambient: float = 0.12
    sky: tuple[float, float, float] = (0.55, 0.70, 0.92)

    @staticmethod
    def demo() -> "MiniScene":
        """The scene used by the examples and image tests."""
        return MiniScene(
            spheres=[
                Sphere((0.0, 0.1, 3.2), 1.1, (0.85, 0.3, 0.25), reflectivity=0.25),
                Sphere((-1.9, -0.4, 4.5), 0.6, (0.25, 0.55, 0.9), reflectivity=0.1),
                Sphere((1.8, -0.5, 2.6), 0.5, (0.3, 0.8, 0.4), reflectivity=0.4),
            ]
        )


class PathTracer:
    """Vectorized whitted-style tracer over a pixel grid."""

    def __init__(self, scene: "MiniScene | None" = None, fov_deg: float = 70.0):
        self.scene = scene or MiniScene.demo()
        self.fov_deg = fov_deg

    # ------------------------------------------------------------------
    def render(self, width: int, height: int) -> np.ndarray:
        """Full-resolution render: (H, W, 3) floats in [0, 1]."""
        origins, directions = self._camera_rays(width, height)
        colors = self._trace(origins, directions, depth=1)
        return colors.reshape(height, width, 3)

    def render_foveated(
        self,
        width: int,
        height: int,
        gaze_px: tuple[float, float],
        foveal_radius_px: float,
        inter_radius_px: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Foveated render.

        Rays are cast at full density inside the foveal disc, at one ray
        per 2x2 block in the inter-foveal annulus, and one per 4x4 block in
        the periphery, then block-replicated back to full resolution.

        Returns (image (H, W, 3), rays_cast_fraction).
        """
        image = np.zeros((height, width, 3))
        yy, xx = np.mgrid[0:height, 0:width]
        dist2 = (xx - gaze_px[0]) ** 2 + (yy - gaze_px[1]) ** 2
        foveal_mask = dist2 <= foveal_radius_px**2
        inter_mask = (dist2 <= inter_radius_px**2) & ~foveal_mask

        # Peripheral pass: render the whole frame at 1/4 x 1/4 density.
        coarse = self.render(max(width // 4, 1), max(height // 4, 1))
        image[:] = np.repeat(np.repeat(coarse, 4, axis=0), 4, axis=1)[:height, :width]
        rays = coarse.shape[0] * coarse.shape[1]

        # Inter-foveal pass: 1/2 x 1/2 density inside the annulus.
        mid = self.render(max(width // 2, 1), max(height // 2, 1))
        mid_full = np.repeat(np.repeat(mid, 2, axis=0), 2, axis=1)[:height, :width]
        image[inter_mask] = mid_full[inter_mask]
        rays += int(inter_mask.sum()) // 4

        # Foveal pass: full density rays for foveal pixels only.
        if foveal_mask.any():
            origins, directions = self._camera_rays(width, height)
            idx = foveal_mask.reshape(-1)
            colors = self._trace(origins, directions[idx], depth=1)
            image.reshape(-1, 3)[idx] = colors
            rays += int(foveal_mask.sum())

        return image, rays / (width * height)

    # ------------------------------------------------------------------
    def _camera_rays(self, width: int, height: int):
        aspect = width / height
        half = math.tan(math.radians(self.fov_deg / 2.0))
        xs = np.linspace(-half * aspect, half * aspect, width)
        ys = np.linspace(half / 1.0, -half / 1.0, height)
        xx, yy = np.meshgrid(xs, ys)
        directions = np.stack([xx, yy, np.ones_like(xx)], axis=-1).reshape(-1, 3)
        directions /= np.linalg.norm(directions, axis=-1, keepdims=True)
        origin = np.zeros(3)
        return origin, directions

    def _intersect(self, origins: np.ndarray, directions: np.ndarray):
        """Nearest hit: returns (t, hit_point, normal, color, reflect)."""
        n = directions.shape[0]
        best_t = np.full(n, np.inf)
        normal = np.zeros((n, 3))
        color = np.zeros((n, 3))
        reflect = np.zeros(n)

        o = np.broadcast_to(origins, directions.shape)
        # Ground plane y = plane_y.
        dy = directions[:, 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t_plane = (self.scene.plane_y - o[:, 1]) / dy
        hit_plane = (t_plane > 1e-4) & (t_plane < best_t)
        best_t[hit_plane] = t_plane[hit_plane]
        normal[hit_plane] = (0.0, 1.0, 0.0)
        finite_t = np.where(np.isfinite(best_t), best_t, 0.0)
        p = o + directions * finite_t[:, None]
        checker = ((np.floor(p[:, 0]) + np.floor(p[:, 2])) % 2).astype(int)
        plane_cols = np.array(self.scene.plane_colors)
        color[hit_plane] = plane_cols[checker[hit_plane]]

        for sphere in self.scene.spheres:
            center = np.asarray(sphere.center)
            oc = o - center
            b = np.einsum("ij,ij->i", oc, directions)
            c = np.einsum("ij,ij->i", oc, oc) - sphere.radius**2
            disc = b * b - c
            hit = disc > 0
            sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
            t = -b - sqrt_disc
            t = np.where(t > 1e-4, t, -b + sqrt_disc)
            hit &= (t > 1e-4) & (t < best_t)
            best_t[hit] = t[hit]
            pts = o[hit] + directions[hit] * t[hit, None]
            normal[hit] = (pts - center) / sphere.radius
            color[hit] = sphere.color
            reflect[hit] = sphere.reflectivity

        hit_any = np.isfinite(best_t)
        points = o + directions * np.where(hit_any, best_t, 0.0)[:, None]
        return hit_any, points, normal, color, reflect

    def _trace(self, origins, directions: np.ndarray, depth: int) -> np.ndarray:
        hit, points, normals, colors, reflect = self._intersect(origins, directions)
        out = np.tile(np.asarray(self.scene.sky), (directions.shape[0], 1))
        if not hit.any():
            return out

        light = np.asarray(self.scene.light_pos)
        to_light = light - points
        dist_light = np.linalg.norm(to_light, axis=-1, keepdims=True)
        to_light = to_light / np.maximum(dist_light, 1e-9)
        lambert = np.clip(np.einsum("ij,ij->i", normals, to_light), 0.0, 1.0)

        # Hard shadows: occluded points get ambient only.
        shadow_origin = points + normals * 1e-3
        shadow_hit, s_points, *_ = self._intersect_from(shadow_origin[hit], to_light[hit])
        occluded = np.zeros(hit.shape[0], dtype=bool)
        # Only count occluders closer than the light.
        d_occ = np.linalg.norm(s_points - shadow_origin[hit], axis=-1)
        occluded[np.flatnonzero(hit)] = shadow_hit & (d_occ < dist_light[hit, 0])

        shading = self.scene.ambient + (1 - self.scene.ambient) * np.where(
            occluded, 0.0, lambert
        )
        shaded = colors * shading[:, None]

        if depth > 0:
            mirrors = hit & (reflect > 0.01)
            if mirrors.any():
                d = directions[mirrors]
                n_vec = normals[mirrors]
                refl_dir = d - 2 * np.einsum("ij,ij->i", d, n_vec)[:, None] * n_vec
                refl_origin = points[mirrors] + n_vec * 1e-3
                refl_color = self._trace_from(refl_origin, refl_dir, depth - 1)
                k = reflect[mirrors][:, None]
                shaded[mirrors] = (1 - k) * shaded[mirrors] + k * refl_color

        out[hit] = shaded[hit]
        return np.clip(out, 0.0, 1.0)

    def _intersect_from(self, origins: np.ndarray, directions: np.ndarray):
        """Intersection with per-ray origins (shadow/reflection rays)."""
        saved = self._intersect
        # Reuse _intersect by broadcasting: it already supports (N, 3) origins.
        return saved(origins, directions)

    def _trace_from(self, origins: np.ndarray, directions: np.ndarray, depth: int) -> np.ndarray:
        hit, points, normals, colors, _ = self._intersect(origins, directions)
        out = np.tile(np.asarray(self.scene.sky), (directions.shape[0], 1))
        light = np.asarray(self.scene.light_pos)
        to_light = light - points
        to_light /= np.maximum(np.linalg.norm(to_light, axis=-1, keepdims=True), 1e-9)
        lambert = np.clip(np.einsum("ij,ij->i", normals, to_light), 0.0, 1.0)
        shading = self.scene.ambient + (1 - self.scene.ambient) * lambert
        out[hit] = (colors * shading[:, None])[hit]
        return np.clip(out, 0.0, 1.0)
