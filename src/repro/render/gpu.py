"""Edge-GPU ray-tracing latency model (Vulkan-Sim / Jetson Orin NX stand-in).

The paper simulates ray-traced rendering with Vulkan-Sim configured as a
Jetson Orin NX (8 SMs at 765 MHz, §7).  End-to-end, the quantity that
matters to the TFR comparisons is how rendering latency scales with the
number of rays (pixels x samples) and with per-scene traversal/shading
cost.  This model captures exactly that:

    latency = frame_overhead + rays * cycles_per_ray / (sm_count * clock)

``frame_overhead`` absorbs resolution-independent costs (BVH refit,
pipeline setup, framebuffer ops).  With the scene coefficients in
``repro.render.scene`` this reproduces Fig. 1's averages (80 / 155 /
282 ms at 720P / 1080P / 1440P) and its 20-700 ms min/max spread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.render.scene import Resolution, SceneProfile
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GpuModel:
    """Throughput model of the rendering GPU."""

    name: str = "Jetson Orin NX 8GB"
    sm_count: int = 8
    clock_hz: float = 765e6
    frame_overhead_s: float = 0.008

    def __post_init__(self) -> None:
        check_positive("sm_count", self.sm_count)
        check_positive("clock_hz", self.clock_hz)
        check_positive("frame_overhead_s", self.frame_overhead_s, strict=False)

    @property
    def cycles_per_second(self) -> float:
        """Aggregate cycle budget across SMs."""
        return self.sm_count * self.clock_hz

    def ray_latency(self, rays: float, scene: SceneProfile) -> float:
        """Seconds to trace ``rays`` camera rays of ``scene`` (no overhead)."""
        if rays < 0:
            raise ValueError(f"rays must be non-negative, got {rays}")
        return rays * scene.cycles_per_ray / self.cycles_per_second

    def frame_latency(self, rays: float, scene: SceneProfile) -> float:
        """Seconds for a full frame pass tracing ``rays`` rays."""
        return self.frame_overhead_s + self.ray_latency(rays, scene)

    def full_resolution_latency(self, resolution: Resolution, scene: SceneProfile) -> float:
        """Fig. 1's quantity: full-resolution ray-traced frame time."""
        return self.frame_latency(resolution.pixels, scene)
