"""Commercial eye-tracker comparison point (paper §7.3/§7.4).

The paper simulates a Vive Pro Eye-equipped HMD using latency and error
figures from the literature: a gaze-detection delay of up to 50 ms [98]
and headset-grade tracking accuracy [46].  At 1080P this produces the
86.7 ms average TFR latency of Table 5.
"""

from __future__ import annotations

from repro.system.tfr import TrackerSystemProfile

#: Gaze-detection delay of the commercial tracker pipeline [98].
VIVE_PRO_EYE_TD_S = 0.050
#: Effective P95 tracking error of the commercial headset tracker [46].
VIVE_PRO_EYE_DELTA_THETA_DEG = 4.5


def vive_pro_eye_profile() -> TrackerSystemProfile:
    """System profile of the Vive Pro Eye commercial tracker."""
    return TrackerSystemProfile(
        name="Vive Pro Eye",
        td_predict_s=VIVE_PRO_EYE_TD_S,
        delta_theta_deg=VIVE_PRO_EYE_DELTA_THETA_DEG,
    )
