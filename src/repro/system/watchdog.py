"""Tracking-quality watchdog: online degradation detection and recovery.

POLO sizes the foveal region from the tracker's P95 error (Eq. 1), so the
whole perceptual contract silently breaks the moment the tracker degrades
— occluded eyes, sensor noise bursts, stalled inference — while the
renderer keeps trusting the nominal error budget.  The watchdog closes
that loop: it monitors a sliding window of realized tracking errors and
per-frame confidence (eyelid openness, link integrity) and walks a
four-level degradation ladder:

* ``NOMINAL``   — tracker inside budget; render with the profile's Δθ.
* ``WIDENED``   — error inflated: widen the foveal radius to the *online*
  P95 via :meth:`TrackerSystemProfile.with_delta_theta` (Eq. 1 absorbs
  the extra error as a larger full-resolution disc).
* ``REUSE_ONLY`` — tracker untrustworthy: stop acting on fresh
  predictions; serve frames from the buffered gaze (Algorithm 1's reuse
  mechanism) until quality returns.
* ``FULL_RES``  — tracking lost: fall back to full-resolution rendering,
  which needs no gaze at all (the Fig. 12 comparator).

Escalation is immediate (a broken tracker must never shrink perceptual
quality for even one window), de-escalation is hysteretic: the watchdog
steps down one level only after the quality signal has been continuously
healthy for ``recovery_dwell_s``.  All transitions and per-level dwell
times are recorded for telemetry.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.system.tfr import TrackerSystemProfile
from repro.utils.validation import check_in_range, check_positive


class DegradationLevel(enum.IntEnum):
    """Watchdog degradation ladder, ordered by severity."""

    NOMINAL = 0
    WIDENED = 1
    REUSE_ONLY = 2
    FULL_RES = 3


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds of the quality monitor.

    The error thresholds are multiples of the profile's nominal Δθ (its
    P95 error): online P95 above ``widen_factor * Δθ`` widens the fovea,
    above ``reuse_factor * Δθ`` stops trusting fresh predictions, above
    ``full_res_factor * Δθ`` abandons foveation.  Windowed mean confidence
    below ``confidence_floor`` forces at least ``REUSE_ONLY`` regardless
    of the error stream (a mostly-closed eye produces few error samples
    but must still degrade).
    """

    window: int = 128
    min_samples: int = 16
    widen_factor: float = 1.5
    reuse_factor: float = 2.5
    full_res_factor: float = 4.0
    confidence_floor: float = 0.5
    recovery_dwell_s: float = 0.5
    widen_margin: float = 1.1

    def __post_init__(self) -> None:
        check_positive("window", self.window)
        check_positive("min_samples", self.min_samples)
        if self.min_samples > self.window:
            raise ValueError(
                f"min_samples {self.min_samples} exceeds window {self.window}"
            )
        if not 1.0 <= self.widen_factor <= self.reuse_factor <= self.full_res_factor:
            raise ValueError(
                "thresholds must satisfy 1 <= widen_factor <= reuse_factor "
                f"<= full_res_factor, got {self.widen_factor}, "
                f"{self.reuse_factor}, {self.full_res_factor}"
            )
        check_in_range("confidence_floor", self.confidence_floor, 0.0, 1.0)
        check_positive("recovery_dwell_s", self.recovery_dwell_s)
        check_positive("widen_margin", self.widen_margin)


class TrackingWatchdog:
    """Online P95-error / confidence monitor with hysteretic recovery."""

    def __init__(
        self,
        profile: TrackerSystemProfile,
        config: "WatchdogConfig | None" = None,
        start_s: float = 0.0,
        on_transition=None,
    ):
        self.profile = profile
        self.config = config or WatchdogConfig()
        #: Optional ``(now_s, from_name, to_name)`` callback fired on every
        #: ladder transition — used by observability to emit trace instants.
        self.on_transition = on_transition
        self.level = DegradationLevel.NOMINAL
        self.transitions: list[tuple[float, str, str]] = []
        self._errors: deque[float] = deque(maxlen=self.config.window)
        self._confidences: deque[float] = deque(maxlen=self.config.window)
        self._healthy_since: "float | None" = None
        self._level_entered_s = start_s
        self._dwell_s = {level.name: 0.0 for level in DegradationLevel}
        self._max_widened_deg = profile.delta_theta_deg
        self._finalized_s: "float | None" = None

    # ------------------------------------------------------------------
    # Quality signals
    # ------------------------------------------------------------------
    def online_p95_deg(self) -> "float | None":
        """Windowed P95 tracking error; None until ``min_samples`` seen."""
        if len(self._errors) < self.config.min_samples:
            return None
        return float(np.percentile(np.asarray(self._errors), 95))

    def mean_confidence(self) -> float:
        if not self._confidences:
            return 1.0
        return float(np.mean(np.asarray(self._confidences)))

    def _target_level(self) -> DegradationLevel:
        cfg = self.config
        nominal = max(self.profile.delta_theta_deg, 1e-9)
        target = DegradationLevel.NOMINAL
        p95 = self.online_p95_deg()
        if p95 is not None:
            ratio = p95 / nominal
            if ratio > cfg.full_res_factor:
                target = DegradationLevel.FULL_RES
            elif ratio > cfg.reuse_factor:
                target = DegradationLevel.REUSE_ONLY
            elif ratio > cfg.widen_factor:
                target = DegradationLevel.WIDENED
        if self.mean_confidence() < cfg.confidence_floor:
            target = max(target, DegradationLevel.REUSE_ONLY)
        return target

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def observe(
        self,
        now_s: float,
        error_deg: "float | None" = None,
        confidence: float = 1.0,
    ) -> DegradationLevel:
        """Feed one frame's quality signals; returns the current level.

        ``error_deg`` is the realized tracking error when a gaze sample
        exists (None for frames with no usable signal, e.g. a closed
        eye); ``confidence`` in [0, 1] is the sensing-chain health
        (eyelid openness degraded by link corruption).
        """
        if error_deg is not None:
            if error_deg < 0:
                raise ValueError(f"error_deg must be non-negative, got {error_deg}")
            self._errors.append(float(error_deg))
        self._confidences.append(float(np.clip(confidence, 0.0, 1.0)))

        target = self._target_level()
        if target > self.level:
            self._transition(now_s, target)
            self._healthy_since = None
        elif target < self.level:
            if self._healthy_since is None:
                self._healthy_since = now_s
            elif now_s - self._healthy_since >= self.config.recovery_dwell_s:
                self._transition(now_s, DegradationLevel(self.level - 1))
                self._healthy_since = now_s  # one level per dwell period
        else:
            self._healthy_since = None
        if self.level > DegradationLevel.NOMINAL:
            self._max_widened_deg = max(
                self._max_widened_deg, self.widened_delta_theta_deg()
            )
        return self.level

    def escalate(
        self,
        now_s: float,
        to: DegradationLevel = DegradationLevel.WIDENED,
    ) -> DegradationLevel:
        """Force the ladder up to at least ``to`` from an external signal.

        The SLO engine calls this when a latency error budget pages
        (``on_page: "widen"``): even with healthy tracking, a serving
        stack that is missing deadlines should widen the foveal radius
        (Eq. 1) so stale-but-covered gaze beats fresh-but-late gaze.
        Never de-escalates — recovery stays hysteretic via
        :meth:`observe`.
        """
        if to > self.level:
            self._transition(now_s, to)
            self._healthy_since = None
        if self.level > DegradationLevel.NOMINAL:
            self._max_widened_deg = max(
                self._max_widened_deg, self.widened_delta_theta_deg()
            )
        return self.level

    def _transition(self, now_s: float, to: DegradationLevel) -> None:
        self._dwell_s[self.level.name] += max(0.0, now_s - self._level_entered_s)
        self.transitions.append((now_s, self.level.name, to.name))
        if self.on_transition is not None:
            self.on_transition(now_s, self.level.name, to.name)
        self.level = to
        self._level_entered_s = now_s

    # ------------------------------------------------------------------
    # Render-side coupling (Eq. 1)
    # ------------------------------------------------------------------
    def widened_delta_theta_deg(self) -> float:
        """The Δθ the renderer should budget for right now: the online
        P95 with a safety margin, never below the nominal operating
        point."""
        p95 = self.online_p95_deg()
        if p95 is None:
            return self.profile.delta_theta_deg
        return max(self.profile.delta_theta_deg, self.config.widen_margin * p95)

    def profile_now(self) -> TrackerSystemProfile:
        """The profile the TFR composition should use at this instant —
        identical at NOMINAL, widened via Eq. 1 under degradation."""
        if self.level is DegradationLevel.NOMINAL:
            return self.profile
        return self.profile.with_delta_theta(self.widened_delta_theta_deg())

    @property
    def max_widened_delta_theta_deg(self) -> float:
        """Worst Δθ operating point the watchdog ever commanded."""
        return self._max_widened_deg

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def finalize(self, now_s: float) -> None:
        """Close the dwell accounting at end of run (idempotent)."""
        if self._finalized_s is not None:
            now_s = self._finalized_s
        self._dwell_s[self.level.name] += max(0.0, now_s - self._level_entered_s)
        self._level_entered_s = now_s
        self._finalized_s = now_s

    def dwell_s(self) -> dict[str, float]:
        """Seconds spent at each level (call :meth:`finalize` first for a
        closed ledger)."""
        return dict(self._dwell_s)

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the full monitor state (sliding windows,
        ladder position, hysteresis clock, dwell ledger)."""
        return {
            "level": self.level.name,
            "transitions": [list(t) for t in self.transitions],
            "errors": list(self._errors),
            "confidences": list(self._confidences),
            "healthy_since": self._healthy_since,
            "level_entered_s": self._level_entered_s,
            "dwell_s": dict(self._dwell_s),
            "max_widened_deg": self._max_widened_deg,
            "finalized_s": self._finalized_s,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (window caps preserved)."""
        self.level = DegradationLevel[state["level"]]
        self.transitions = [
            (float(t), str(src), str(dst)) for t, src, dst in state["transitions"]
        ]
        self._errors = deque(
            (float(x) for x in state["errors"]), maxlen=self.config.window
        )
        self._confidences = deque(
            (float(x) for x in state["confidences"]), maxlen=self.config.window
        )
        healthy = state["healthy_since"]
        self._healthy_since = None if healthy is None else float(healthy)
        self._level_entered_s = float(state["level_entered_s"])
        self._dwell_s = {str(k): float(v) for k, v in state["dwell_s"].items()}
        self._max_widened_deg = float(state["max_widened_deg"])
        finalized = state["finalized_s"]
        self._finalized_s = None if finalized is None else float(finalized)
