"""End-to-end TFR system model (paper §2.3, §5.3; Eqs. 6-8; Fig. 11).

Composes the camera sensor, MIPI link, gaze processor (accelerator or
GPU), and the foveated-rendering pipeline into per-frame and average
latencies under the two computational patterns:

* **sequential** (Fig. 11b): Ts + Tc + Td + Tr.
* **parallel** (Fig. 11c): the gaze-independent R1 pass starts at frame
  start and overlaps sensing/communication/gaze processing; the foveal
  R2 pass waits for both: max(Ts + Tc + Td, Tr1) + Tr2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.eye.events import EventMix
from repro.hw.mipi import MipiLink
from repro.hw.sensor import CameraSensor
from repro.render.pipeline import RenderPipeline
from repro.render.scene import Resolution, SceneProfile
from repro.utils.validation import check_positive


class Schedule(enum.Enum):
    """Computational pattern between gaze tracking and rendering."""

    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"


@dataclass(frozen=True)
class TrackerSystemProfile:
    """What the TFR system needs to know about one gaze-processing method.

    ``td_predict_s`` is the fresh-prediction gaze latency; methods without
    saccade gating / reuse support (all baselines) leave the other two
    latencies equal to it and are always costed on the predict path.
    ``delta_theta_deg`` is the tracking error used to size the foveal
    region (P95 by default in §7).
    """

    name: str
    td_predict_s: float
    delta_theta_deg: float
    td_saccade_s: "float | None" = None
    td_reuse_s: "float | None" = None
    energy_predict_j: float = 0.0

    def __post_init__(self) -> None:
        check_positive("td_predict_s", self.td_predict_s)
        if self.delta_theta_deg < 0:
            raise ValueError("delta_theta_deg must be non-negative")

    @property
    def supports_event_gating(self) -> bool:
        return self.td_saccade_s is not None and self.td_reuse_s is not None

    def td_for_path(self, path: str) -> float:
        if path == "predict":
            return self.td_predict_s
        if path == "saccade":
            return self.td_saccade_s if self.td_saccade_s is not None else self.td_predict_s
        if path == "reuse":
            return self.td_reuse_s if self.td_reuse_s is not None else self.td_predict_s
        raise ValueError(f"unknown path {path!r}")

    def with_delta_theta(self, delta_theta_deg: float) -> "TrackerSystemProfile":
        """Same method, different error operating point (mean / JND series
        of Fig. 12)."""
        return TrackerSystemProfile(
            name=self.name,
            td_predict_s=self.td_predict_s,
            delta_theta_deg=delta_theta_deg,
            td_saccade_s=self.td_saccade_s,
            td_reuse_s=self.td_reuse_s,
            energy_predict_j=self.energy_predict_j,
        )


@dataclass(frozen=True)
class FrameLatency:
    """Latency decomposition of one TFR frame."""

    total_s: float
    sensing_s: float
    communication_s: float
    gaze_s: float
    rendering_s: float
    r1_s: float = 0.0
    r2_s: float = 0.0

    @property
    def fps(self) -> float:
        return 1.0 / self.total_s

    def breakdown(self) -> dict[str, float]:
        return {
            "sensing": self.sensing_s,
            "communication": self.communication_s,
            "gaze": self.gaze_s,
            "rendering": self.rendering_s,
        }


class TfrSystem:
    """Latency composition for one headset configuration."""

    def __init__(
        self,
        sensor: "CameraSensor | None" = None,
        link: "MipiLink | None" = None,
        pipeline: "RenderPipeline | None" = None,
    ):
        self.sensor = sensor or CameraSensor()
        self.link = link or MipiLink()
        self.pipeline = pipeline or RenderPipeline()

    # ------------------------------------------------------------------
    @property
    def ts(self) -> float:
        return self.sensor.acquisition_s

    @property
    def tc(self) -> float:
        return self.link.transfer_latency_s(self.sensor.frame_bits)

    # ------------------------------------------------------------------
    def frame_latency(
        self,
        profile: TrackerSystemProfile,
        scene: SceneProfile,
        resolution: Resolution,
        path: str = "predict",
        schedule: Schedule = Schedule.SEQUENTIAL,
        tracer=None,
        t0_s: float = 0.0,
    ) -> FrameLatency:
        """One frame's end-to-end latency on the given Algorithm-1 path.

        With a ``tracer`` (see :mod:`repro.obs`), the stage decomposition
        is also emitted as sim-clock spans on the TFR track starting at
        ``t0_s``, laid out exactly as the schedule composes them
        (sequential chain, or the Fig.-11c overlap with R1 starting at
        frame start).  Tracing never changes the returned latencies.
        """
        td = profile.td_for_path(path)
        if path == "saccade":
            # Uniform low-resolution rendering; no foveal pass exists, so
            # the parallel schedule degenerates to overlapping the single
            # low-res pass with gaze processing.
            tr = self.pipeline.saccade_latency(scene, resolution)
            if schedule is Schedule.PARALLEL:
                total = max(self.ts + self.tc + td, tr)
            else:
                total = self.ts + self.tc + td + tr
            latency = FrameLatency(total, self.ts, self.tc, td, tr, r1_s=tr)
            self._trace_frame(tracer, t0_s, latency, path, schedule)
            return latency

        fov = self.pipeline.foveated_latency(scene, resolution, profile.delta_theta_deg)
        if schedule is Schedule.PARALLEL:
            total = max(self.ts + self.tc + td, fov.r1_s) + fov.r2_s
        else:
            total = self.ts + self.tc + td + fov.total_s
        latency = FrameLatency(
            total,
            self.ts,
            self.tc,
            td,
            fov.total_s,
            r1_s=fov.r1_s,
            r2_s=fov.r2_s,
        )
        self._trace_frame(tracer, t0_s, latency, path, schedule)
        return latency

    def _trace_frame(
        self,
        tracer,
        t0_s: float,
        latency: FrameLatency,
        path: str,
        schedule: Schedule,
    ) -> None:
        """Emit the stage layout of one TFR frame as sim-clock spans."""
        if tracer is None or not tracer.enabled:
            return
        from repro.obs import PID_TFR

        def span(name: str, start: float, dur: float, tid: int = 0) -> None:
            tracer.record_span(
                name, start, dur, cat="tfr", pid=PID_TFR, tid=tid,
                args={"path": path, "schedule": schedule.value},
            )

        gaze_done = t0_s + latency.sensing_s + latency.communication_s + latency.gaze_s
        span("tfr.sensing", t0_s, latency.sensing_s)
        span("tfr.communication", t0_s + latency.sensing_s, latency.communication_s)
        span("tfr.gaze", t0_s + latency.sensing_s + latency.communication_s, latency.gaze_s)
        if schedule is Schedule.PARALLEL:
            # R1 overlaps the sensing chain on its own row; R2 starts when
            # both the gaze and R1 are done (Fig. 11c).
            span("tfr.render.r1", t0_s, latency.r1_s, tid=1)
            if latency.r2_s > 0:
                r2_start = max(gaze_done, t0_s + latency.r1_s)
                span("tfr.render.r2", r2_start, latency.r2_s, tid=1)
        else:
            span("tfr.render.r1", gaze_done, latency.r1_s)
            if latency.r2_s > 0:
                span("tfr.render.r2", gaze_done + latency.r1_s, latency.r2_s)

    def full_resolution_latency(
        self, scene: SceneProfile, resolution: Resolution
    ) -> float:
        """The no-tracking comparator: full-res render only (green bars of
        Fig. 12); no sensing/gaze stages are needed."""
        return self.pipeline.full_latency(scene, resolution)

    # ------------------------------------------------------------------
    def average_latency(
        self,
        profile: TrackerSystemProfile,
        scene: SceneProfile,
        resolution: Resolution,
        event_mix: "EventMix | None" = None,
        schedule: Schedule = Schedule.SEQUENTIAL,
    ) -> float:
        """Eqs. 6-7: event-mix-weighted average frame latency.

        Methods without event gating always pay the predict path.
        """
        if event_mix is None or not profile.supports_event_gating:
            return self.frame_latency(profile, scene, resolution, "predict", schedule).total_s
        parts = (
            ("saccade", event_mix.p_saccade),
            ("reuse", event_mix.p_reuse),
            ("predict", event_mix.p_predict),
        )
        return sum(
            p * self.frame_latency(profile, scene, resolution, path, schedule).total_s
            for path, p in parts
        )

    def fps_max(
        self,
        profile: TrackerSystemProfile,
        scene: SceneProfile,
        resolution: Resolution,
        event_mix: "EventMix | None" = None,
        schedule: Schedule = Schedule.SEQUENTIAL,
    ) -> float:
        """Eq. 8: maximum sustainable frame rate."""
        return 1.0 / self.average_latency(profile, scene, resolution, event_mix, schedule)
