"""Aggregation and formatting helpers for system-level results."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional way to average speedups)."""
    values = list(values)
    if not values:
        raise ValueError("no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


def ms(seconds: float) -> float:
    """Seconds -> milliseconds."""
    return seconds * 1e3


def fmt_ms(seconds: float, digits: int = 1) -> str:
    return f"{seconds * 1e3:.{digits}f}ms"


def speedup(baseline: float, improved: float) -> float:
    """Latency speedup of ``improved`` over ``baseline``."""
    if improved <= 0:
        raise ValueError("improved latency must be positive")
    return baseline / improved


def table_to_text(headers: list[str], rows: list[list], min_width: int = 10) -> str:
    """Render a simple aligned text table (benchmark harness output)."""
    widths = [max(min_width, len(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def percentile_key(p: float) -> str:
    """Canonical summary key of one percentile (``50 -> "p50"``,
    ``99.9 -> "p99.9"``)."""
    return f"p{int(p)}" if float(p).is_integer() else f"p{p:g}"


def percentile_summary(
    values: np.ndarray, ps: "Iterable[float]" = (90, 95)
) -> dict[str, float]:
    """Mean plus the requested percentiles (defaults to the Table 1 format).

    Interpolation is explicitly *linear* between closest ranks (numpy's
    default), chosen so small samples interpolate instead of snapping to
    an observed order statistic — the single implementation shared by the
    gaze-error tables, serving telemetry, and the ``repro.obs`` metrics
    registry.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("no values")
    ps = list(ps)
    summary = {"mean": float(values.mean())}
    quantiles = np.percentile(values, ps, method="linear")
    for p, q in zip(ps, quantiles):
        summary[percentile_key(p)] = float(q)
    return summary


def is_close_factor(measured: float, expected: float, factor: float = 2.0) -> bool:
    """True when measured is within a multiplicative band of expected —
    the acceptance criterion for 'shape holds' checks."""
    if measured <= 0 or expected <= 0:
        raise ValueError("values must be positive")
    ratio = measured / expected
    return 1.0 / factor <= ratio <= factor


def log_ratio(measured: float, expected: float) -> float:
    """Signed log2 deviation between measured and expected."""
    return math.log2(measured / expected)
