"""System layer: end-to-end TFR latency composition (Eqs. 6-8) and the
commercial-tracker comparison profile."""

from repro.system.commercial import (
    VIVE_PRO_EYE_DELTA_THETA_DEG,
    VIVE_PRO_EYE_TD_S,
    vive_pro_eye_profile,
)
from repro.system.metrics import (
    fmt_ms,
    geometric_mean,
    is_close_factor,
    log_ratio,
    ms,
    percentile_key,
    percentile_summary,
    speedup,
    table_to_text,
)
from repro.system.session import (
    SessionConfig,
    SessionReport,
    decide_paths,
    simulate_session,
)
from repro.system.tfr import FrameLatency, Schedule, TfrSystem, TrackerSystemProfile
from repro.system.watchdog import DegradationLevel, TrackingWatchdog, WatchdogConfig

__all__ = [
    "DegradationLevel",
    "TrackingWatchdog",
    "WatchdogConfig",
    "VIVE_PRO_EYE_DELTA_THETA_DEG",
    "VIVE_PRO_EYE_TD_S",
    "vive_pro_eye_profile",
    "fmt_ms",
    "geometric_mean",
    "is_close_factor",
    "log_ratio",
    "ms",
    "percentile_key",
    "percentile_summary",
    "speedup",
    "table_to_text",
    "SessionConfig",
    "SessionReport",
    "decide_paths",
    "simulate_session",
    "FrameLatency",
    "Schedule",
    "TfrSystem",
    "TrackerSystemProfile",
]
