"""Frame-by-frame TFR session simulation.

Replays an oculomotor trace through the Algorithm-1 decision logic and
the system timing model, producing a per-frame latency timeline — the
dynamic counterpart of the steady-state Eqs. 6-8.  This is what a
downstream user runs to ask "what does POLO do to *my* content at *my*
frame rate": deadline misses, latency percentiles, and the realized
event mix all fall out of one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eye.events import EventMix, MovementType
from repro.eye.motion import GazeTrack
from repro.render.scene import Resolution, SceneProfile
from repro.system.tfr import Schedule, TfrSystem, TrackerSystemProfile
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SessionConfig:
    """Replay parameters.

    ``reuse_displacement_deg`` mirrors gamma2's semantics: the buffered
    gaze is reused while the eye stays within this angular distance of
    the last *predicted* position (displacement, not instantaneous
    velocity, because fixational tremor makes per-frame velocity noisy
    while barely moving the binary map).
    """

    reuse_displacement_deg: float = 1.0
    post_saccade_low_res: bool = True  # paper §2.1: 50 ms post-saccadic window

    def __post_init__(self) -> None:
        check_positive("reuse_displacement_deg", self.reuse_displacement_deg)


@dataclass
class SessionReport:
    """Timeline and aggregates of one simulated session.

    A report always covers at least one frame: the latency aggregates
    (mean, percentiles, miss rate) are undefined on an empty timeline, so
    construction rejects it instead of letting numpy emit nan + warnings.
    """

    frame_latency_s: np.ndarray
    decisions: list[str]
    event_mix: EventMix
    deadline_s: float
    fps: float

    def __post_init__(self) -> None:
        self.frame_latency_s = np.asarray(self.frame_latency_s, dtype=np.float64)
        if self.frame_latency_s.size == 0:
            raise ValueError("SessionReport requires a non-empty latency timeline")
        if len(self.decisions) != self.frame_latency_s.size:
            raise ValueError(
                f"decisions length {len(self.decisions)} does not match "
                f"{self.frame_latency_s.size} latency samples"
            )

    @property
    def mean_latency_s(self) -> float:
        return float(self.frame_latency_s.mean())

    @property
    def p99_latency_s(self) -> float:
        return float(np.percentile(self.frame_latency_s, 99))

    @property
    def deadline_miss_rate(self) -> float:
        return float(np.mean(self.frame_latency_s > self.deadline_s))

    def summary(self) -> dict[str, float]:
        return {
            "mean_ms": self.mean_latency_s * 1e3,
            "p99_ms": self.p99_latency_s * 1e3,
            "miss_rate": self.deadline_miss_rate,
            "p_saccade": self.event_mix.p_saccade,
            "p_reuse": self.event_mix.p_reuse,
            "p_predict": self.event_mix.p_predict,
        }


def decide_paths(
    track: GazeTrack,
    config: "SessionConfig | None" = None,
    supports_event_gating: bool = True,
) -> list[str]:
    """Per-frame Algorithm-1 path decisions for an oculomotor trace.

    The decision is derived from the trace's kinematics (the behavioural
    ground truth the trained detector approximates): saccadic frames — plus
    the post-saccadic window when enabled — take the saccade path; quiet
    frames whose gaze stays near the last fresh prediction take the reuse
    path; everything else pays for a fresh prediction.  Methods without
    event gating always pay the predict path.  This is shared by the
    single-session replay here and the multi-session serving runtime
    (``repro.serve``), which routes only predict frames to its worker pool.
    """
    config = config or SessionConfig()
    n = len(track)
    if n == 0:
        raise ValueError("empty gaze track")
    decisions: list[str] = []
    anchor: "np.ndarray | None" = None  # gaze at the last fresh prediction
    for i in range(n):
        if not supports_event_gating:
            path = "predict"
        elif track.labels[i] == MovementType.SACCADE or (
            config.post_saccade_low_res and track.post_saccade[i]
        ):
            path = "saccade"
        elif (
            anchor is not None
            and float(np.linalg.norm(track.gaze_deg[i] - anchor))
            < config.reuse_displacement_deg
        ):
            path = "reuse"
        else:
            path = "predict"
        if path == "predict":
            anchor = track.gaze_deg[i]
        decisions.append(path)
    return decisions


def simulate_session(
    profile: TrackerSystemProfile,
    track: GazeTrack,
    scene: SceneProfile,
    resolution: Resolution,
    system: "TfrSystem | None" = None,
    schedule: Schedule = Schedule.SEQUENTIAL,
    config: "SessionConfig | None" = None,
) -> SessionReport:
    """Replay ``track`` through the decision logic and timing model.

    Paths come from :func:`decide_paths`; each frame is then costed by the
    system timing model on its path.
    """
    system = system or TfrSystem()
    config = config or SessionConfig()
    n = len(track)
    if n == 0:
        raise ValueError("empty gaze track")

    decisions = decide_paths(
        track, config, supports_event_gating=profile.supports_event_gating
    )
    latencies = np.zeros(n)
    counts = {"saccade": 0, "reuse": 0, "predict": 0}
    for i, path in enumerate(decisions):
        counts[path] += 1
        latencies[i] = system.frame_latency(
            profile, scene, resolution, path, schedule
        ).total_s

    mix = EventMix.from_counts(counts["saccade"], counts["reuse"], counts["predict"])
    deadline = 1.0 / track.fps
    return SessionReport(
        frame_latency_s=latencies,
        decisions=decisions,
        event_mix=mix,
        deadline_s=max(deadline, 1e-9),
        fps=track.fps,
    )
