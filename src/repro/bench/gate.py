"""The regression gate: newest bench record vs its ledger baseline.

For every bench in the history, the *candidate* is the newest record and
the *baseline* is the record before it.  A metric gates only when the
shared direction registry (:mod:`repro.obs.directions`) declares which
way is worse — unknown metrics and ``wall_s`` are reported but never
fail the gate.  A regression is a worse-direction move beyond the
declared relative tolerance::

    |candidate - baseline| > tolerance * max(|baseline|, 1e-9)

``python -m repro bench gate`` exits :data:`GATE_EXIT_REGRESSION` when
any metric regresses — the CI contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.ledger import latest_per_bench
from repro.obs.directions import metric_direction
from repro.system.metrics import table_to_text

#: Exit code of ``bench gate`` on regression (distinct from argparse's 2).
GATE_EXIT_REGRESSION = 4

#: Default relative tolerance for every gated metric.
DEFAULT_TOLERANCE = 0.05


@dataclass(frozen=True)
class GateRow:
    """One gated metric's comparison."""

    bench: str
    metric: str
    direction: int
    baseline: float
    candidate: float
    tolerance: float
    regressed: bool
    improved: bool


def parse_tolerances(specs: "list[str]") -> "tuple[float, dict[str, float]]":
    """``["0.05", "p95_ms=0.1"]`` -> (default, per-metric overrides)."""
    default = DEFAULT_TOLERANCE
    overrides: dict[str, float] = {}
    for spec in specs:
        if "=" in spec:
            name, _, raw = spec.partition("=")
            if not name:
                raise ValueError(f"bad tolerance spec {spec!r}")
            overrides[name] = float(raw)
        else:
            default = float(spec)
    if default < 0 or any(v < 0 for v in overrides.values()):
        raise ValueError("tolerances must be non-negative")
    return default, overrides


def evaluate_gate(
    records: "list[dict]",
    tolerance: float = DEFAULT_TOLERANCE,
    overrides: "dict[str, float] | None" = None,
) -> "list[GateRow]":
    """Compare the newest record per bench against its predecessor.

    Benches with fewer than two records have no baseline yet and pass
    vacuously (the first append seeds the trajectory).  Only metrics
    present in both records and known to the direction registry gate.
    """
    overrides = overrides or {}
    rows: list[GateRow] = []
    for bench, bench_records in sorted(latest_per_bench(records).items()):
        if len(bench_records) < 2:
            continue
        baseline, candidate = bench_records[-2], bench_records[-1]
        for name in sorted(candidate["metrics"]):
            direction = metric_direction(name)
            if direction == 0:
                continue
            base = baseline["metrics"].get(name)
            cand = candidate["metrics"][name]
            if not isinstance(base, (int, float)) or not isinstance(
                cand, (int, float)
            ):
                continue
            base, cand = float(base), float(cand)
            tol = overrides.get(name, tolerance)
            band = tol * max(abs(base), 1e-9)
            worse = (cand - base) * direction < 0
            beyond = abs(cand - base) > band
            rows.append(GateRow(
                bench=bench, metric=name, direction=direction,
                baseline=base, candidate=cand, tolerance=tol,
                regressed=worse and beyond,
                improved=(not worse) and beyond and cand != base,
            ))
    return rows


def format_gate(rows: "list[GateRow]", records: "list[dict]") -> str:
    """Deterministic gate report: per-metric table + summary line."""
    grouped = latest_per_bench(records)
    lines = []
    unseeded = sorted(b for b, r in grouped.items() if len(r) < 2)
    for bench in unseeded:
        lines.append(f"bench {bench}: 1 record, no baseline yet — pass")
    if rows:
        table = [
            [
                row.bench,
                row.metric,
                "+" if row.direction > 0 else "-",
                f"{row.baseline:.6g}",
                f"{row.candidate:.6g}",
                f"{row.candidate - row.baseline:+.6g}",
                f"{row.tolerance:g}",
                "REGRESSED" if row.regressed
                else ("improved" if row.improved else "ok"),
            ]
            for row in rows
        ]
        lines.append(table_to_text(
            ["bench", "metric", "dir", "baseline", "candidate",
             "delta", "tol", "verdict"],
            table, min_width=4,
        ))
    regressions = [r for r in rows if r.regressed]
    improvements = [r for r in rows if r.improved]
    lines.append(
        f"gate: {len(rows)} metrics checked, "
        f"{len(regressions)} regressed, {len(improvements)} improved"
    )
    return "\n".join(lines)
