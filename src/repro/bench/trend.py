"""Trend view: sparklines + signed deltas over the bench history."""

from __future__ import annotations

from repro.bench.ledger import latest_per_bench
from repro.obs.directions import metric_direction
from repro.system.metrics import table_to_text

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: "list[float]") -> str:
    """Unicode sparkline; a constant series renders flat mid-height."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo <= 0:
        return _SPARK[3] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int(round((v - lo) * scale))] for v in values)


def _series(records: "list[dict]", name: str) -> "list[float]":
    return [
        float(r["metrics"][name])
        for r in records
        if isinstance(r["metrics"].get(name), (int, float))
    ]


def format_trend(
    records: "list[dict]", benches: "list[str] | None" = None
) -> str:
    """One row per (bench, metric): history sparkline, endpoints, delta.

    The ``dir`` column is the registry direction (``+`` higher is
    better, ``-`` lower, blank unknown/ungated); ``Δlast`` is the move
    of the newest record against its predecessor.
    """
    grouped = latest_per_bench(records)
    names = benches if benches is not None else sorted(grouped)
    rows = []
    for bench in names:
        bench_records = grouped.get(bench, [])
        if not bench_records:
            continue
        metric_names = sorted({
            name for r in bench_records for name in r["metrics"]
        })
        for name in metric_names:
            values = _series(bench_records, name)
            if not values:
                continue
            direction = metric_direction(name)
            delta = values[-1] - values[-2] if len(values) > 1 else 0.0
            rows.append([
                bench,
                name,
                {1: "+", -1: "-"}.get(direction, ""),
                len(values),
                sparkline(values),
                f"{values[0]:.6g}",
                f"{values[-1]:.6g}",
                f"{delta:+.6g}" if len(values) > 1 else "-",
            ])
    return table_to_text(
        ["bench", "metric", "dir", "n", "trend", "first", "last", "Δlast"],
        rows, min_width=4,
    )
