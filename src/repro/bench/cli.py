"""``python -m repro bench`` — run suites, view trends, gate regressions.

Subcommands::

    bench run    [--suite serve sdc] [--ledger PATH] [--snapshot-dir DIR]
    bench trend  [--ledger PATH] [--bench NAME ...]
    bench gate   [--ledger PATH] [--tolerance SPEC ...]
    bench report [--ledger PATH] [--slo-dir DIR] [-o FILE]

``run`` executes the named suites (all by default), writes the classic
``BENCH_<name>.json`` snapshot per suite, and appends one sealed record
per suite to the history ledger.  ``gate`` exits 4 on any regression
beyond tolerance (``0.05`` default; ``p95_ms=0.1`` overrides one
metric).  ``trend`` and ``report`` are pure functions of the ledger.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.bench.gate import (
    GATE_EXIT_REGRESSION,
    evaluate_gate,
    format_gate,
    parse_tolerances,
)
from repro.bench.ledger import (
    BENCH_LEDGER_NAME,
    BenchLedgerError,
    append_bench_record,
    read_bench_history,
)
from repro.bench.report import render_report
from repro.bench.suites import SUITES
from repro.bench.trend import format_trend


def _add_ledger_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger", type=Path, default=Path(BENCH_LEDGER_NAME),
        metavar="PATH", help=f"history ledger (default: {BENCH_LEDGER_NAME})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark history: run suites, trend, regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run suites, snapshot + append history")
    run.add_argument("--suite", nargs="+", choices=sorted(SUITES),
                     default=sorted(SUITES))
    run.add_argument("--snapshot-dir", type=Path, default=Path("."),
                     metavar="DIR",
                     help="where BENCH_<suite>.json snapshots go")
    _add_ledger_argument(run)

    trend = sub.add_parser("trend", help="sparkline history per metric")
    trend.add_argument("--bench", nargs="+", default=None, metavar="NAME",
                       help="restrict to these bench ids")
    _add_ledger_argument(trend)

    gate = sub.add_parser("gate", help="fail on regression vs the ledger")
    gate.add_argument("--tolerance", nargs="+", default=[], metavar="SPEC",
                      help="relative tolerance: a bare number sets the "
                      "default (0.05), name=value overrides one metric")
    _add_ledger_argument(gate)

    report = sub.add_parser("report", help="self-contained HTML dashboard")
    report.add_argument("--slo-dir", type=Path, default=None, metavar="DIR",
                        help="obs-out directory holding slo.jsonl / "
                        "slo_verdicts.json to include")
    report.add_argument("-o", "--out", type=Path,
                        default=Path("bench-report.html"))
    _add_ledger_argument(report)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.recover.codec import canonical_json

    args.snapshot_dir.mkdir(parents=True, exist_ok=True)
    for suite in args.suite:
        payload, metrics = SUITES[suite]()
        snapshot = args.snapshot_dir / f"BENCH_{suite}.json"
        snapshot.write_text(canonical_json(payload) + "\n", encoding="utf-8")
        record = append_bench_record(
            args.ledger, payload["bench"], metrics, context={"source": "cli"},
        )
        print(f"suite {suite}: wrote {snapshot}, "
              f"appended i={record['i']} to {args.ledger}")
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    records = read_bench_history(args.ledger)
    if not records:
        print(f"{args.ledger}: empty history")
        return 0
    print(format_trend(records, benches=args.bench))
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    try:
        default, overrides = parse_tolerances(args.tolerance)
    except ValueError as err:
        raise SystemExit(f"bench gate: {err}")
    records = read_bench_history(args.ledger)
    if not records:
        print(f"{args.ledger}: empty history — nothing to gate")
        return 0
    rows = evaluate_gate(records, tolerance=default, overrides=overrides)
    print(format_gate(rows, records))
    if any(row.regressed for row in rows):
        return GATE_EXIT_REGRESSION
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    records = read_bench_history(args.ledger)
    text = render_report(records, slo_dir=args.slo_dir)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(text, encoding="utf-8")
    print(f"wrote {args.out} ({len(records)} history records)")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "trend": _cmd_trend,
    "gate": _cmd_gate,
    "report": _cmd_report,
}


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BenchLedgerError as err:
        parser.error(str(err))
        return 2  # unreachable; parser.error raises SystemExit


if __name__ == "__main__":
    raise SystemExit(main())
