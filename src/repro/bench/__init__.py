"""Persisted performance trajectories: ledger, trends, regression gate.

The benchmark suites (``benchmarks/``) emit one flat metrics dict per
run.  ``repro.bench`` turns those one-shot snapshots into a *history*:

* :mod:`repro.bench.ledger` — ``BENCH_HISTORY.jsonl``, an append-only
  CRC-sealed ledger of benchmark results (the same journal format the
  crash-recovery WAL and the campaign runs ledger use), tracked in git
  so the repository carries its own performance trajectory.
* :mod:`repro.bench.suites` — the benchmark workloads as plain callables
  (the pytest benches reuse them), each returning the exact snapshot
  payload plus a flattened metrics dict.
* :mod:`repro.bench.trend` — ASCII sparklines + signed deltas over the
  history (``python -m repro bench trend``).
* :mod:`repro.bench.gate` — the regression gate: compares the newest
  record per bench against its ledger baseline using the shared
  metric-direction registry (:mod:`repro.obs.directions`) and exits
  nonzero on any out-of-tolerance move (``python -m repro bench gate``).
* :mod:`repro.bench.report` — a self-contained zero-dependency HTML
  dashboard of bench trajectories and SLO outcomes.
"""

from repro.bench.gate import GATE_EXIT_REGRESSION, evaluate_gate, format_gate
from repro.bench.ledger import (
    BENCH_LEDGER_NAME,
    append_bench_record,
    read_bench_history,
)
from repro.bench.suites import (
    SUITES,
    flatten_net_payload,
    flatten_sdc_payload,
    flatten_serve_payload,
    run_net_transport,
    run_sdc_resilience,
    run_serve_scaling,
)
from repro.bench.trend import format_trend, sparkline

__all__ = [
    "BENCH_LEDGER_NAME",
    "GATE_EXIT_REGRESSION",
    "SUITES",
    "append_bench_record",
    "evaluate_gate",
    "flatten_net_payload",
    "flatten_sdc_payload",
    "flatten_serve_payload",
    "format_gate",
    "format_trend",
    "read_bench_history",
    "run_net_transport",
    "run_sdc_resilience",
    "run_serve_scaling",
    "sparkline",
]
