"""Benchmark suites as plain callables, shared with the pytest benches.

Each suite runs its (deterministic) simulation workload, builds the
exact snapshot payload the pytest benchmarks have always written to
``BENCH_<name>.json``, and flattens it into the one-level metrics dict
the history ledger, trend view, and regression gate consume.  Keeping
both representations derived from one run is what lets the tracked
history be backfilled from old snapshots byte-for-value.

The flattened names are what :mod:`repro.obs.directions` declares
directions for (``fleet64_p95_ms``, ``abft_fit800_coverage``, ...);
``wall_s`` is carried for the record but deliberately never gated.
"""

from __future__ import annotations

import time

from repro.serve.config import ServeConfig

#: Predict-heavy regime of the serve scaling bench: a tiny reuse
#: threshold pushes nearly every non-saccade frame onto the inference
#: pool, and the admission budget stays inside the frame deadline.
BASE = ServeConfig(
    n_sessions=32,
    duration_s=1.0,
    n_workers=1,
    reuse_displacement_deg=0.05,
    queue_budget_deadlines=0.8,
    seed=0,
)

FLEET_SIZES = (8, 16, 32, 64)


def run_serve_scaling() -> "tuple[list, float]":
    """The cross-session batching sweep: per fleet size, the batched
    runtime vs the sequential baseline on the identical fleet.

    Returns ``([(n, batched_report, sequential_report), ...], wall_s)``.
    """
    from repro.serve.request import build_fleet
    from repro.serve.runtime import serve_fleet

    t0 = time.perf_counter()
    rows = []
    for n in FLEET_SIZES:
        config = ServeConfig(
            n_sessions=n,
            duration_s=BASE.duration_s,
            n_workers=BASE.n_workers,
            reuse_displacement_deg=BASE.reuse_displacement_deg,
            queue_budget_deadlines=BASE.queue_budget_deadlines,
            seed=BASE.seed,
        )
        fleet = build_fleet(config)
        batched = serve_fleet(config, fleet=fleet)
        sequential = serve_fleet(config.sequential_baseline(), fleet=fleet)
        rows.append((n, batched, sequential))
    return rows, time.perf_counter() - t0


def serve_payload(rows: list, wall_s: float) -> dict:
    """The ``BENCH_serve.json`` snapshot payload (unchanged shape)."""
    return {
        "bench": "serve_scaling",
        "wall_s": round(wall_s, 3),
        "fleets": [
            {
                "sessions": n,
                "goodput_fps": batched.predict_goodput_fps,
                "sequential_goodput_fps": sequential.predict_goodput_fps,
                "p95_ms": batched.latency_percentile_ms(95),
                "miss_rate": batched.deadline_miss_rate,
                "mean_batch": batched.mean_batch_size,
            }
            for n, batched, sequential in rows
        ],
    }


def flatten_serve_payload(payload: dict) -> "dict[str, float]":
    """Snapshot payload -> one-level ledger metrics (``fleet<N>_*``)."""
    metrics: dict[str, float] = {"wall_s": float(payload["wall_s"])}
    for fleet in payload["fleets"]:
        n = fleet["sessions"]
        for key in (
            "goodput_fps", "sequential_goodput_fps", "p95_ms",
            "miss_rate", "mean_batch",
        ):
            metrics[f"fleet{n}_{key}"] = float(fleet[key])
    return metrics


def run_sdc_resilience() -> "tuple[object, float]":
    """The default SDC campaign; returns ``(report, wall_s)``."""
    from repro.reliability.campaign import default_sdc_campaign, run_sdc_campaign

    t0 = time.perf_counter()
    report = run_sdc_campaign(default_sdc_campaign())
    return report, time.perf_counter() - t0


def sdc_payload(report, wall_s: float) -> dict:
    """The ``BENCH_sdc.json`` snapshot payload (unchanged shape)."""
    return {
        "bench": "sdc_resilience",
        "wall_s": round(wall_s, 3),
        "cycle_overhead": report.cycle_overhead,
        "runs": [run.as_dict() for run in report.runs],
    }


def flatten_sdc_payload(payload: dict) -> "dict[str, float]":
    """Snapshot payload -> one-level ledger metrics
    (``<protection>_fit<rate>_*`` plus the campaign aggregates)."""
    metrics: dict[str, float] = {
        "wall_s": float(payload["wall_s"]),
        "cycle_overhead": float(payload["cycle_overhead"]),
    }
    for run in payload["runs"]:
        prefix = f"{run['protection']}_fit{run['fit_per_mbit']:g}"
        for key in (
            "coverage", "escaped_sdc", "detected", "corrected",
            "recomputed", "p95_error_deg", "mean_error_deg",
            "corrupted_frames", "injected",
        ):
            metrics[f"{prefix}_{key}"] = float(run[key])
    return metrics


def run_fleet_failover() -> "tuple[object, float]":
    """The sharded-fleet failover bench: four shards, one killed mid-run.

    Returns ``(fleet_report, wall_s)``.
    """
    from repro.faults.injectors import ShardKill
    from repro.serve.fleet import FleetConfig, run_fleet

    t0 = time.perf_counter()
    config = FleetConfig(
        serve=ServeConfig(
            n_sessions=96,
            duration_s=BASE.duration_s,
            n_workers=BASE.n_workers,
            reuse_displacement_deg=BASE.reuse_displacement_deg,
            queue_budget_deadlines=BASE.queue_budget_deadlines,
            seed=BASE.seed,
        ),
        n_shards=4,
        kills=(ShardKill(shard_id=2, at_s=0.5),),
    )
    report = run_fleet(config)
    return report, time.perf_counter() - t0


def fleet_payload(report, wall_s: float) -> dict:
    """The ``BENCH_fleet.json`` snapshot payload."""
    summary = report.summary()
    shards = report.shards.summary()
    return {
        "bench": "fleet_failover",
        "wall_s": round(wall_s, 3),
        "sessions": len(report.sessions),
        "goodput_fps": summary["predict_goodput_fps"],
        "p95_ms": summary["p95_ms"],
        "miss_rate": summary["miss_rate"],
        "degrade_rate": summary["degrade_rate"],
        "worker_utilization": summary["worker_utilization"],
        "failover_lost_frames": shards["failover_lost_frames"],
        "rehomed_sessions": shards["rehomed_sessions"],
        "shards_serving": shards["shards_serving"],
    }


def flatten_fleet_payload(payload: dict) -> "dict[str, float]":
    """Snapshot payload -> one-level ledger metrics (already flat; the
    ``bench`` id and session count are identity, not metrics)."""
    return {
        key: float(payload[key])
        for key in (
            "wall_s", "goodput_fps", "p95_ms", "miss_rate", "degrade_rate",
            "worker_utilization", "failover_lost_frames", "rehomed_sessions",
            "shards_serving",
        )
    }


#: Partition lengths of the net transport bench (seconds of blackout on
#: shard 1, starting at 0.2s into the run).
PARTITION_LENGTHS = (0.05, 0.15, 0.25)


def run_net_transport() -> "tuple[list, float]":
    """The lossy-transport bench: one lossy fleet per partition length.

    Every cell runs the identical 24-session / 3-shard fleet over a
    dropping, duplicating, jittering channel and cuts shard 1 off the
    router for ``L`` seconds — measuring what the protocol pays
    (retransmit overhead), what it saves (zero lost frames), and how
    fast a false suspicion heals.  Returns
    ``([(L, fleet_report), ...], wall_s)``.
    """
    from repro.faults.netfaults import LinkProfile, PartitionWindow
    from repro.serve.fleet import FleetConfig, NetConfig, run_fleet

    t0 = time.perf_counter()
    rows = []
    for length_s in PARTITION_LENGTHS:
        config = FleetConfig(
            serve=ServeConfig(
                n_sessions=24,
                duration_s=0.6,
                n_workers=1,
                reuse_displacement_deg=BASE.reuse_displacement_deg,
                queue_budget_deadlines=BASE.queue_budget_deadlines,
                seed=BASE.seed,
            ),
            n_shards=3,
            net=NetConfig(
                enabled=True,
                seed=1,
                link=LinkProfile(
                    drop_rate=0.1, dup_rate=0.1, delay_s=5e-4, jitter_s=1e-3
                ),
                partitions=(
                    PartitionWindow(
                        start_s=0.2,
                        stop_s=0.2 + length_s,
                        shard_ids=(1,),
                    ),
                ),
                ack_timeout_s=4e-3,
                max_retransmits=8,
            ),
        )
        rows.append((length_s, run_fleet(config)))
    return rows, time.perf_counter() - t0


def net_payload(rows: list, wall_s: float) -> dict:
    """The ``BENCH_net.json`` snapshot payload."""
    windows = []
    for length_s, report in rows:
        summary = report.summary()
        counters = report.net.counters
        stop_s = 0.2 + length_s
        heals = [
            t["at_s"] for t in report.net.transitions
            if t["kind"] == "heal" and t["shard"] == 1
        ]
        first_sends = counters["data_sent"] - counters["retransmits"]
        windows.append(
            {
                "partition_s": length_s,
                "retransmit_overhead": counters["retransmits"] / first_sends,
                "frames_lost": float(
                    sum(s.lost_net + s.lost_shard for s in report.sessions)
                ),
                "deduped": counters["frames_deduped"],
                "suspected": counters["suspected"],
                "bounced": counters["heal_bounce_sessions"],
                "heal_s": (heals[0] - stop_s) if heals else 0.0,
                "goodput_fps": summary["predict_goodput_fps"],
                "p95_ms": summary["p95_ms"],
            }
        )
    return {
        "bench": "net_transport",
        "wall_s": round(wall_s, 3),
        "windows": windows,
    }


def flatten_net_payload(payload: dict) -> "dict[str, float]":
    """Snapshot payload -> one-level ledger metrics (``part<L>ms_*``)."""
    metrics: dict[str, float] = {"wall_s": float(payload["wall_s"])}
    for window in payload["windows"]:
        prefix = f"part{int(round(window['partition_s'] * 1000))}ms"
        for key in (
            "retransmit_overhead", "frames_lost", "deduped", "suspected",
            "bounced", "heal_s", "goodput_fps", "p95_ms",
        ):
            metrics[f"{prefix}_{key}"] = float(window[key])
    return metrics


def _suite_serve() -> "tuple[dict, dict]":
    rows, wall_s = run_serve_scaling()
    payload = serve_payload(rows, wall_s)
    return payload, flatten_serve_payload(payload)


def _suite_sdc() -> "tuple[dict, dict]":
    report, wall_s = run_sdc_resilience()
    payload = sdc_payload(report, wall_s)
    return payload, flatten_sdc_payload(payload)


def _suite_fleet() -> "tuple[dict, dict]":
    report, wall_s = run_fleet_failover()
    payload = fleet_payload(report, wall_s)
    return payload, flatten_fleet_payload(payload)


def _suite_net() -> "tuple[dict, dict]":
    rows, wall_s = run_net_transport()
    payload = net_payload(rows, wall_s)
    return payload, flatten_net_payload(payload)


#: Suite name -> zero-arg callable returning ``(payload, metrics)``.
#: The suite name doubles as the snapshot file suffix
#: (``BENCH_<name>.json``); the payload's ``"bench"`` field is the
#: history record's bench id.
SUITES = {
    "serve": _suite_serve,
    "sdc": _suite_sdc,
    "fleet": _suite_fleet,
    "net": _suite_net,
}
