"""Self-contained HTML dashboard: bench trajectories + SLO outcomes.

``python -m repro bench report`` renders the history ledger (and
optionally one run's SLO artifacts) into a single HTML file with inline
SVG — no JavaScript, no external assets, no timestamps, so two renders
of the same inputs are byte-identical (CI diffs them).
"""

from __future__ import annotations

import html
import json
from pathlib import Path

from repro.bench.gate import evaluate_gate
from repro.bench.ledger import latest_per_bench
from repro.obs.directions import metric_direction

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2em auto; max-width: 72em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em;
         text-align: right; font-size: 0.85em; }
th { background: #f0f0f0; } td.name, th.name { text-align: left; }
.ok { color: #0a7d33; } .bad { color: #c0262d; font-weight: bold; }
svg { vertical-align: middle; }
"""


def _svg_polyline(values: "list[float]", width=180, height=36) -> str:
    """One metric's trajectory as an inline SVG polyline."""
    if not values:
        return ""
    pad = 2
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    points = []
    for i, v in enumerate(values):
        x = pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
        y = height - pad - (height - 2 * pad) * ((v - lo) / span)
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg width="{width}" height="{height}">'
        f'<polyline fill="none" stroke="#1565c0" stroke-width="1.5" '
        f'points="{" ".join(points)}"/></svg>'
    )


def _bench_section(records: "list[dict]") -> "list[str]":
    parts = []
    for bench, bench_records in sorted(latest_per_bench(records).items()):
        parts.append(f"<h2>bench: {html.escape(bench)} "
                     f"({len(bench_records)} records)</h2>")
        names = sorted({n for r in bench_records for n in r["metrics"]})
        parts.append('<table><tr><th class="name">metric</th><th>dir</th>'
                     "<th>trajectory</th><th>first</th><th>last</th>"
                     "<th>Δlast</th></tr>")
        for name in names:
            values = [
                float(r["metrics"][name]) for r in bench_records
                if isinstance(r["metrics"].get(name), (int, float))
            ]
            if not values:
                continue
            direction = metric_direction(name)
            delta = values[-1] - values[-2] if len(values) > 1 else 0.0
            worse = len(values) > 1 and direction != 0 and delta * direction < 0
            parts.append(
                f'<tr><td class="name">{html.escape(name)}</td>'
                f"<td>{'+' if direction > 0 else '-' if direction < 0 else ''}</td>"
                f"<td>{_svg_polyline(values)}</td>"
                f"<td>{values[0]:.6g}</td><td>{values[-1]:.6g}</td>"
                f'<td class="{"bad" if worse else "ok"}">'
                f"{delta:+.6g}</td></tr>"
            )
        parts.append("</table>")
    return parts


def _gate_section(records: "list[dict]") -> "list[str]":
    rows = evaluate_gate(records)
    if not rows:
        return []
    parts = ["<h2>regression gate (newest vs previous)</h2>",
             '<table><tr><th class="name">bench</th><th class="name">metric'
             "</th><th>baseline</th><th>candidate</th><th>delta</th>"
             "<th>verdict</th></tr>"]
    for row in rows:
        verdict = ("REGRESSED" if row.regressed
                   else "improved" if row.improved else "ok")
        cls = "bad" if row.regressed else "ok"
        parts.append(
            f'<tr><td class="name">{html.escape(row.bench)}</td>'
            f'<td class="name">{html.escape(row.metric)}</td>'
            f"<td>{row.baseline:.6g}</td><td>{row.candidate:.6g}</td>"
            f"<td>{row.candidate - row.baseline:+.6g}</td>"
            f'<td class="{cls}">{verdict}</td></tr>'
        )
    parts.append("</table>")
    return parts


def _slo_section(slo_dir: Path) -> "list[str]":
    """Render slo_verdicts.json + slo.jsonl burn-rate timelines."""
    verdict_path = slo_dir / "slo_verdicts.json"
    history_path = slo_dir / "slo.jsonl"
    if not verdict_path.exists():
        return [f"<h2>slo</h2><p>no slo_verdicts.json in "
                f"{html.escape(str(slo_dir))}</p>"]
    verdicts = json.loads(verdict_path.read_text(encoding="utf-8"))
    parts = ["<h2>slo compliance</h2>",
             '<table><tr><th class="name">slo</th><th>kind</th><th>target'
             "</th><th>attained</th><th>pages</th><th>warns</th>"
             "<th>final</th><th>verdict</th></tr>"]
    for v in verdicts:
        attained = "-" if v["attained"] is None else f"{v['attained']:.6g}"
        cls = "ok" if v["ok"] else "bad"
        parts.append(
            f'<tr><td class="name">{html.escape(v["name"])}</td>'
            f"<td>{html.escape(v['kind'])}</td><td>{v['target']:.6g}</td>"
            f"<td>{attained}</td><td>{v['pages']}</td><td>{v['warns']}</td>"
            f"<td>{html.escape(v['final_state'])}</td>"
            f'<td class="{cls}">{"PASS" if v["ok"] else "FAIL"}</td></tr>'
        )
    parts.append("</table>")
    if history_path.exists():
        rows = [
            json.loads(line)
            for line in history_path.read_text(encoding="utf-8").splitlines()
            if line
        ]
        by_slo: dict[str, list[dict]] = {}
        for row in rows:
            by_slo.setdefault(row["slo"], []).append(row)
        parts.append("<h2>burn-rate timelines</h2>")
        parts.append('<table><tr><th class="name">slo</th><th>window</th>'
                     "<th>timeline</th><th>peak</th></tr>")
        for slo in sorted(by_slo):
            series = by_slo[slo]
            for window in ("fast", "slow"):
                values = [float(r[f"burn_{window}"]) for r in series]
                parts.append(
                    f'<tr><td class="name">{html.escape(slo)}</td>'
                    f"<td>{window}</td>"
                    f"<td>{_svg_polyline(values, width=360)}</td>"
                    f"<td>{max(values):.6g}</td></tr>"
                )
        parts.append("</table>")
    return parts


def render_report(
    records: "list[dict]", slo_dir: "Path | None" = None
) -> str:
    """The full dashboard as one HTML string (deterministic bytes)."""
    parts = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        "<title>bench report</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>performance trajectory</h1>",
        f"<p>{len(records)} history records</p>",
    ]
    parts.extend(_bench_section(records))
    parts.extend(_gate_section(records))
    if slo_dir is not None:
        parts.extend(_slo_section(Path(slo_dir)))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
