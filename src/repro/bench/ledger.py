"""The bench history ledger: ``BENCH_HISTORY.jsonl``.

One CRC-sealed canonical-JSON line per benchmark run, in the exact
write-ahead journal format of :mod:`repro.recover.journal` (and the
campaign runs ledger): strictly increasing integer ``i``, a torn final
line tolerated and truncated before reopen, interior damage fatal.

Records carry no wall clocks beyond the benchmark's own ``wall_s``
metric (which the direction registry deliberately never gates) and no
host names — the ledger is meant to live *in git*, so each appended line
is a reviewable diff: the performance trajectory of the repository.

Record shape::

    {"i": 3, "bench": "serve_scaling",
     "metrics": {"fleet8_goodput_fps": 467.4, ...},
     "context": {"source": "cli"}}
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.exp.track import _truncate_torn_tail
from repro.recover.errors import JournalError
from repro.recover.journal import JournalWriter, read_journal

#: File name of the tracked history ledger at the repo root.
BENCH_LEDGER_NAME = "BENCH_HISTORY.jsonl"


class BenchLedgerError(ValueError):
    """A malformed bench history (bad journal or record shape)."""


def read_bench_history(path: "str | os.PathLike") -> list[dict]:
    """All verified history records, in append order.

    A missing file is an empty history; a torn final line is dropped
    (the crash signature); anything else raises.
    """
    try:
        records = read_journal(Path(path))
    except JournalError as err:
        raise BenchLedgerError(str(err)) from err
    for record in records:
        if not isinstance(record.get("bench"), str) or not isinstance(
            record.get("metrics"), dict
        ):
            raise BenchLedgerError(
                f"{path} record i={record.get('i')}: needs string 'bench' "
                "and dict 'metrics'"
            )
    return records


def append_bench_record(
    path: "str | os.PathLike",
    bench: str,
    metrics: dict,
    context: "dict | None" = None,
) -> dict:
    """Append one sealed result record; returns the record written.

    The file is truncated past any torn tail first, so append-mode
    reopen stays canonical even after a kill mid-append.
    """
    path = Path(path)
    _truncate_torn_tail(path)
    records = read_bench_history(path)
    record = {
        "i": (records[-1]["i"] + 1) if records else 1,
        "bench": str(bench),
        "metrics": {str(k): v for k, v in metrics.items()},
        "context": dict(context or {}),
    }
    writer = JournalWriter(path, resume=True)
    try:
        writer.append(record)
        writer.sync()
    finally:
        writer.close()
    return record


def latest_per_bench(records: list[dict]) -> "dict[str, list[dict]]":
    """Group history records by bench name, preserving append order."""
    grouped: dict[str, list[dict]] = {}
    for record in records:
        grouped.setdefault(record["bench"], []).append(record)
    return grouped
