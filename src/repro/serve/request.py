"""Client sessions and per-frame requests of the serving runtime.

Each simulated HMD client is an independent oculomotor trace sampled from
:class:`repro.eye.OculomotorModel` with its own seed.  Every frame carries
its Algorithm-1 path decision (computed by ``repro.system.decide_paths``
from the trace kinematics): saccade and reuse frames are handled on-device
and never reach the serving pool, so only the predict-path skew — highly
uneven across sessions — arrives as load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eye.motion import GazeTrack, OculomotorConfig, OculomotorModel
from repro.serve.config import ServeConfig
from repro.system.session import SessionConfig, decide_paths


@dataclass(frozen=True)
class FrameRequest:
    """One frame of one session entering the runtime."""

    session_id: int
    frame_index: int
    arrival_s: float
    deadline_s: float  # absolute completion deadline
    path: str  # Algorithm-1 decision: saccade | reuse | predict
    seq: int  # global arrival order (deterministic tie-break)
    retries: int = 0  # dispatch attempts already failed (chaos runtime)

    def to_dict(self) -> dict:
        """JSON-safe snapshot (exact float round-trip via repr)."""
        return {
            "session_id": self.session_id,
            "frame_index": self.frame_index,
            "arrival_s": self.arrival_s,
            "deadline_s": self.deadline_s,
            "path": self.path,
            "seq": self.seq,
            "retries": self.retries,
        }

    @staticmethod
    def from_dict(state: dict) -> "FrameRequest":
        return FrameRequest(
            session_id=int(state["session_id"]),
            frame_index=int(state["frame_index"]),
            arrival_s=float(state["arrival_s"]),
            deadline_s=float(state["deadline_s"]),
            path=str(state["path"]),
            seq=int(state["seq"]),
            retries=int(state["retries"]),
        )


@dataclass
class ClientSession:
    """One HMD client: its trace, per-frame decisions, and arrival clock."""

    session_id: int
    track: GazeTrack
    decisions: list[str]
    start_s: float

    @property
    def n_frames(self) -> int:
        return len(self.track)

    def arrival_s(self, frame_index: int) -> float:
        return self.start_s + frame_index / self.track.fps

    def gaze_deg(self, frame_index: int) -> np.ndarray:
        return self.track.gaze_deg[frame_index]


def build_fleet(config: ServeConfig) -> list[ClientSession]:
    """Sample ``n_sessions`` independent clients.

    Session ``i`` uses oculomotor seed ``config.seed * 10007 + i`` (unique
    and reproducible per session) and starts ``i * stagger_s`` after the
    simulation origin, so arrivals interleave instead of stampeding at
    exactly the same instants.
    """
    session_config = SessionConfig(
        reuse_displacement_deg=config.reuse_displacement_deg,
        post_saccade_low_res=config.post_saccade_low_res,
    )
    motion = OculomotorConfig(fps=config.fps)
    fleet = []
    for i in range(config.n_sessions):
        model = OculomotorModel(motion, seed=config.seed * 10007 + i)
        track = model.generate(config.frames_per_session)
        fleet.append(
            ClientSession(
                session_id=i,
                track=track,
                decisions=decide_paths(track, session_config),
                start_s=i * config.stagger_s,
            )
        )
    return fleet


def fleet_requests(fleet: list[ClientSession], deadline_s: float) -> list[FrameRequest]:
    """All frames of all sessions in global arrival order."""
    raw = []
    for session in fleet:
        for f in range(session.n_frames):
            raw.append((session.arrival_s(f), session.session_id, f))
    raw.sort()
    return [
        FrameRequest(
            session_id=sid,
            frame_index=f,
            arrival_s=arrival,
            deadline_s=arrival + deadline_s,
            path=fleet[sid].decisions[f],
            seq=seq,
        )
        for seq, (arrival, sid, f) in enumerate(raw)
    ]
