"""Simulated inference worker pool.

Each worker serves one batch at a time under the affine service-time model
``t(b) = fixed + per_sample * b``.  The pool tracks busy time and the
realized batch-occupancy histogram — the two numbers that tell you whether
cross-session batching is actually amortizing the per-dispatch overhead or
the fleet is just queueing.

The bottom half of the module is the fault-injection surface used by
``repro.faults``: a declarative :class:`WorkerFaultSchedule` (crashes,
stalls, latency-spike windows) and a :class:`FaultyWorkerPool` whose
dispatches can fail mid-service.  Everything stays deterministic — faults
fire at scheduled times, not sampled ones, so a seeded chaos run is
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.config import BatchServiceModel
from repro.utils.validation import check_positive


@dataclass
class WorkerState:
    """One worker's bookkeeping."""

    worker_id: int
    busy_until_s: float = 0.0
    busy_s: float = 0.0
    batches_served: int = 0
    frames_served: int = 0

    def idle_at(self, now: float) -> bool:
        return self.busy_until_s <= now


class WorkerPool:
    """Fixed pool of identical batched-inference workers."""

    def __init__(self, n_workers: int, service: BatchServiceModel):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.service = service
        self.workers = [WorkerState(i) for i in range(n_workers)]
        self.batch_occupancy: dict[int, int] = {}
        self._in_flight: dict[int, int] = {}  # worker_id -> batch size

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def idle_worker(self, now: float) -> "WorkerState | None":
        """Lowest-id idle worker (deterministic tie-break)."""
        for worker in self.workers:
            if worker.idle_at(now):
                return worker
        return None

    def in_flight_frames(self) -> int:
        """Frames currently being served (for admission estimates)."""
        return sum(self._in_flight.values())

    def dispatch(self, worker: WorkerState, batch_size: int, now: float) -> float:
        """Start a batch on ``worker``; returns its completion time."""
        if not worker.idle_at(now):
            raise RuntimeError(
                f"worker {worker.worker_id} is busy until {worker.busy_until_s}"
            )
        service = self.service.service_s(batch_size)
        worker.busy_until_s = now + service
        worker.busy_s += service
        worker.batches_served += 1
        worker.frames_served += batch_size
        self.batch_occupancy[batch_size] = self.batch_occupancy.get(batch_size, 0) + 1
        self._in_flight[worker.worker_id] = batch_size
        return worker.busy_until_s

    def complete(self, worker: WorkerState) -> None:
        self._in_flight.pop(worker.worker_id, None)

    def utilization(self, duration_s: float) -> float:
        """Mean fraction of the window each worker spent serving."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        return sum(min(w.busy_s, duration_s) for w in self.workers) / (
            self.n_workers * duration_s
        )

    def mean_batch_size(self) -> float:
        total = sum(b * c for b, c in self.batch_occupancy.items())
        count = sum(self.batch_occupancy.values())
        return total / count if count else 0.0

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot (int-keyed dicts become pair lists)."""
        return {
            "workers": [
                {
                    "worker_id": w.worker_id,
                    "busy_until_s": w.busy_until_s,
                    "busy_s": w.busy_s,
                    "batches_served": w.batches_served,
                    "frames_served": w.frames_served,
                }
                for w in self.workers
            ],
            "batch_occupancy": sorted(self.batch_occupancy.items()),
            "in_flight": sorted(self._in_flight.items()),
        }

    def load_state(self, state: dict) -> None:
        if len(state["workers"]) != self.n_workers:
            raise ValueError(
                f"snapshot has {len(state['workers'])} workers, "
                f"pool has {self.n_workers}"
            )
        for worker, saved in zip(self.workers, state["workers"]):
            if worker.worker_id != int(saved["worker_id"]):
                raise ValueError(
                    f"snapshot worker id {saved['worker_id']} does not match "
                    f"pool slot {worker.worker_id}"
                )
            worker.busy_until_s = float(saved["busy_until_s"])
            worker.busy_s = float(saved["busy_s"])
            worker.batches_served = int(saved["batches_served"])
            worker.frames_served = int(saved["frames_served"])
        self.batch_occupancy = {
            int(size): int(count) for size, count in state["batch_occupancy"]
        }
        self._in_flight = {int(wid): int(size) for wid, size in state["in_flight"]}


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerCrash:
    """Worker ``worker_id`` dies at ``at_s`` and restarts after ``down_s``.

    A batch in flight when the crash fires fails at the crash instant;
    the worker is unavailable for the whole downtime window.
    """

    worker_id: int
    at_s: float
    down_s: float

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError(f"worker_id must be non-negative, got {self.worker_id}")
        check_positive("at_s", self.at_s, strict=False)
        check_positive("down_s", self.down_s)

    @property
    def up_s(self) -> float:
        return self.at_s + self.down_s


@dataclass(frozen=True)
class WorkerStall:
    """Worker hangs on any batch dispatched inside ``[start_s, stop_s)``:
    the dispatch never completes on its own and fails at the runtime's
    dispatch timeout."""

    worker_id: int
    start_s: float
    stop_s: float

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError(f"worker_id must be non-negative, got {self.worker_id}")
        if not self.stop_s > self.start_s >= 0:
            raise ValueError(
                f"stall window must satisfy 0 <= start < stop, got "
                f"[{self.start_s}, {self.stop_s})"
            )


@dataclass(frozen=True)
class LatencySpike:
    """Service times multiplied by ``factor`` for batches dispatched inside
    ``[start_s, stop_s)``; ``worker_id=None`` hits the whole pool (a shared
    backend contention event rather than one sick worker)."""

    start_s: float
    stop_s: float
    factor: float
    worker_id: "int | None" = None

    def __post_init__(self) -> None:
        if not self.stop_s > self.start_s >= 0:
            raise ValueError(
                f"spike window must satisfy 0 <= start < stop, got "
                f"[{self.start_s}, {self.stop_s})"
            )
        if self.factor < 1.0:
            raise ValueError(f"spike factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class WorkerFaultSchedule:
    """Declarative fault plan for a pool (empty by default)."""

    crashes: tuple[WorkerCrash, ...] = ()
    stalls: tuple[WorkerStall, ...] = ()
    spikes: tuple[LatencySpike, ...] = ()

    def spike_factor(self, worker_id: int, now: float) -> float:
        factor = 1.0
        for spike in self.spikes:
            if spike.worker_id not in (None, worker_id):
                continue
            if spike.start_s <= now < spike.stop_s:
                factor *= spike.factor
        return factor

    def stalled(self, worker_id: int, now: float) -> bool:
        return any(
            s.worker_id == worker_id and s.start_s <= now < s.stop_s
            for s in self.stalls
        )

    def crash_during(
        self, worker_id: int, start_s: float, stop_s: float
    ) -> "WorkerCrash | None":
        """Earliest crash of ``worker_id`` firing inside ``[start_s, stop_s)``."""
        hits = [
            c
            for c in self.crashes
            if c.worker_id == worker_id and start_s <= c.at_s < stop_s
        ]
        return min(hits, key=lambda c: c.at_s) if hits else None

    def down_until(self, worker_id: int, now: float) -> "float | None":
        """End of the crash downtime covering ``now``, if any."""
        for crash in self.crashes:
            if crash.worker_id == worker_id and crash.at_s <= now < crash.up_s:
                return crash.up_s
        return None

    @property
    def empty(self) -> bool:
        return not (self.crashes or self.stalls or self.spikes)


@dataclass(frozen=True)
class DispatchOutcome:
    """What happened to one faulty dispatch."""

    done_s: float  # completion (or failure) time
    ok: bool
    cause: "str | None" = None  # "crash" | "stall" on failure


class FaultyWorkerPool(WorkerPool):
    """Worker pool whose dispatches can crash, stall, or slow down.

    Failed batches keep the worker occupied until the failure resolves
    (crash downtime / stall timeout) but are *not* counted as served —
    the chaos runtime re-queues their frames.
    """

    def __init__(
        self,
        n_workers: int,
        service: BatchServiceModel,
        schedule: "WorkerFaultSchedule | None" = None,
        stall_timeout_s: float = 0.05,
    ):
        super().__init__(n_workers, service)
        self.schedule = schedule or WorkerFaultSchedule()
        self.stall_timeout_s = check_positive("stall_timeout_s", stall_timeout_s)
        self.failed_batches = 0
        self.failed_frames = 0

    def available(self, worker: WorkerState, now: float) -> bool:
        """Idle *and* not inside a crash downtime window."""
        return worker.idle_at(now) and self.schedule.down_until(
            worker.worker_id, now
        ) is None

    def idle_worker(self, now: float) -> "WorkerState | None":
        for worker in self.workers:
            if self.available(worker, now):
                return worker
        return None

    def next_available_s(self, now: float) -> "float | None":
        """Earliest instant any worker might become available again (used
        to schedule a wake-up when the queue is blocked); None if some
        worker is available right now."""
        if self.idle_worker(now) is not None:
            return None
        candidates = []
        for worker in self.workers:
            at = max(worker.busy_until_s, now)
            down = self.schedule.down_until(worker.worker_id, at)
            if down is not None:
                at = down
            candidates.append(at)
        return min(candidates) if candidates else None

    def dispatch_faulty(
        self, worker: WorkerState, batch_size: int, now: float
    ) -> DispatchOutcome:
        """Start a batch; the outcome says when it completes or fails."""
        if not self.available(worker, now):
            raise RuntimeError(
                f"worker {worker.worker_id} is not available at {now}"
            )
        wid = worker.worker_id
        if self.schedule.stalled(wid, now):
            done = now + self.stall_timeout_s
            self._book_failure(worker, batch_size, now, done)
            return DispatchOutcome(done, ok=False, cause="stall")
        service = self.service.service_s(batch_size) * self.schedule.spike_factor(
            wid, now
        )
        crash = self.schedule.crash_during(wid, now, now + service)
        if crash is not None:
            self._book_failure(worker, batch_size, now, crash.at_s)
            worker.busy_until_s = crash.up_s
            return DispatchOutcome(crash.at_s, ok=False, cause="crash")
        worker.busy_until_s = now + service
        worker.busy_s += service
        worker.batches_served += 1
        worker.frames_served += batch_size
        self.batch_occupancy[batch_size] = self.batch_occupancy.get(batch_size, 0) + 1
        self._in_flight[wid] = batch_size
        return DispatchOutcome(worker.busy_until_s, ok=True)

    def _book_failure(
        self, worker: WorkerState, batch_size: int, now: float, fail_s: float
    ) -> None:
        worker.busy_until_s = fail_s
        worker.busy_s += fail_s - now
        self.failed_batches += 1
        self.failed_frames += batch_size
        self._in_flight[worker.worker_id] = batch_size

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["failed_batches"] = self.failed_batches
        state["failed_frames"] = self.failed_frames
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.failed_batches = int(state["failed_batches"])
        self.failed_frames = int(state["failed_frames"])
