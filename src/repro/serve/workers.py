"""Simulated inference worker pool.

Each worker serves one batch at a time under the affine service-time model
``t(b) = fixed + per_sample * b``.  The pool tracks busy time and the
realized batch-occupancy histogram — the two numbers that tell you whether
cross-session batching is actually amortizing the per-dispatch overhead or
the fleet is just queueing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.config import BatchServiceModel


@dataclass
class WorkerState:
    """One worker's bookkeeping."""

    worker_id: int
    busy_until_s: float = 0.0
    busy_s: float = 0.0
    batches_served: int = 0
    frames_served: int = 0

    def idle_at(self, now: float) -> bool:
        return self.busy_until_s <= now


class WorkerPool:
    """Fixed pool of identical batched-inference workers."""

    def __init__(self, n_workers: int, service: BatchServiceModel):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.service = service
        self.workers = [WorkerState(i) for i in range(n_workers)]
        self.batch_occupancy: dict[int, int] = {}
        self._in_flight: dict[int, int] = {}  # worker_id -> batch size

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def idle_worker(self, now: float) -> "WorkerState | None":
        """Lowest-id idle worker (deterministic tie-break)."""
        for worker in self.workers:
            if worker.idle_at(now):
                return worker
        return None

    def in_flight_frames(self) -> int:
        """Frames currently being served (for admission estimates)."""
        return sum(self._in_flight.values())

    def dispatch(self, worker: WorkerState, batch_size: int, now: float) -> float:
        """Start a batch on ``worker``; returns its completion time."""
        if not worker.idle_at(now):
            raise RuntimeError(
                f"worker {worker.worker_id} is busy until {worker.busy_until_s}"
            )
        service = self.service.service_s(batch_size)
        worker.busy_until_s = now + service
        worker.busy_s += service
        worker.batches_served += 1
        worker.frames_served += batch_size
        self.batch_occupancy[batch_size] = self.batch_occupancy.get(batch_size, 0) + 1
        self._in_flight[worker.worker_id] = batch_size
        return worker.busy_until_s

    def complete(self, worker: WorkerState) -> None:
        self._in_flight.pop(worker.worker_id, None)

    def utilization(self, duration_s: float) -> float:
        """Mean fraction of the window each worker spent serving."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        return sum(min(w.busy_s, duration_s) for w in self.workers) / (
            self.n_workers * duration_s
        )

    def mean_batch_size(self) -> float:
        total = sum(b * c for b, c in self.batch_occupancy.items())
        count = sum(self.batch_occupancy.values())
        return total / count if count else 0.0
