"""``python -m repro serve`` — run a fleet-serving simulation.

Simulates N concurrent HMD clients multiplexed onto a worker pool and
prints the fleet report.  ``--compare-sequential`` additionally replays
the identical fleet with cross-session batching disabled (``max_batch=1``)
and prints both reports plus the goodput ratio.
"""

from __future__ import annotations

import argparse
from dataclasses import fields

from repro.obs.cli import (
    add_obs_arguments,
    add_slo_arguments,
    emit_obs_artifacts,
    emit_slo_artifacts,
    obs_from_args,
    resolve_obs_out,
)
from repro.recover.cli import add_checkpoint_arguments, run_checkpointed_cli
from repro.serve.config import AdmissionPolicy, BatchServiceModel, ServeConfig
from repro.serve.request import build_fleet
from repro.serve.runtime import ServeRuntime, serve_fleet
from repro.serve.telemetry import FleetReport, format_fleet_report


# ----------------------------------------------------------------------
# Campaign entry point (repro.exp)
# ----------------------------------------------------------------------
def resolve_run_config(params: dict) -> dict:
    """Validate campaign params -> the fully resolved canonical dict.

    Params are flat :class:`ServeConfig` field overrides plus an optional
    ``"service"`` sub-dict of :class:`BatchServiceModel` overrides;
    unknown keys are rejected, and the returned dict spells out *every*
    knob (defaults applied) so the campaign config hash is stable across
    equivalent spellings.
    """
    from repro.recover.configio import serve_config_to_dict, service_model_to_dict

    params = dict(params)
    try:
        service = BatchServiceModel(**params.pop("service", {}))
    except TypeError as err:
        raise ValueError(f"bad serve service params: {err}") from err
    known = {f.name for f in fields(ServeConfig)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown serve params: {unknown} (known: {sorted(known)})"
        )
    if isinstance(params.get("admission"), str):
        params["admission"] = AdmissionPolicy(params["admission"])
    config = ServeConfig(**params)
    return {
        "kind": "serve",
        "config": serve_config_to_dict(config),
        "service": service_model_to_dict(service),
    }


def run_from_config(params: dict, obs=None) -> FleetReport:
    """Campaign entry point: params dict -> the run's FleetReport."""
    from repro.recover.configio import serve_config_from_dict, service_model_from_dict

    resolved = resolve_run_config(params)
    config = serve_config_from_dict(resolved["config"])
    service = service_model_from_dict(resolved["service"])
    return serve_fleet(config, service=service, obs=obs)


def build_parser() -> argparse.ArgumentParser:
    defaults = ServeConfig()
    service = BatchServiceModel()
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Simulate serving a fleet of gaze-tracked HMD sessions.",
    )
    parser.add_argument("--sessions", type=int, default=defaults.n_sessions)
    parser.add_argument("--duration", type=float, default=defaults.duration_s,
                        help="simulated window in seconds")
    parser.add_argument("--fps", type=float, default=defaults.fps,
                        help="per-session frame rate")
    parser.add_argument("--workers", type=int, default=defaults.n_workers)
    parser.add_argument("--max-batch", type=int, default=defaults.max_batch)
    parser.add_argument("--batch-window-ms", type=float,
                        default=defaults.batch_window_s * 1e3,
                        help="dynamic batching window in milliseconds")
    parser.add_argument("--admission",
                        choices=[p.value for p in AdmissionPolicy],
                        default=defaults.admission.value)
    parser.add_argument("--queue-budget", type=float,
                        default=defaults.queue_budget_deadlines,
                        help="admission budget in units of the frame deadline")
    parser.add_argument("--deadline-frames", type=float,
                        default=defaults.deadline_frames,
                        help="per-frame deadline in frame periods")
    parser.add_argument("--reuse-displacement", type=float,
                        default=defaults.reuse_displacement_deg,
                        help="Algorithm-1 reuse threshold in degrees "
                        "(smaller => more predict-path load)")
    parser.add_argument("--service-fixed-ms", type=float,
                        default=service.fixed_s * 1e3,
                        help="per-dispatch overhead of one batch")
    parser.add_argument("--service-per-sample-ms", type=float,
                        default=service.per_sample_s * 1e3,
                        help="marginal per-sample service time")
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--compare-sequential", action="store_true",
                        help="also run the max_batch=1 baseline on the same fleet")
    parser.add_argument("--max-session-rows", type=int, default=8)
    add_checkpoint_arguments(parser)
    add_obs_arguments(parser)
    add_slo_arguments(parser)
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        n_sessions=args.sessions,
        duration_s=args.duration,
        fps=args.fps,
        n_workers=args.workers,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms * 1e-3,
        admission=AdmissionPolicy(args.admission),
        queue_budget_deadlines=args.queue_budget,
        deadline_frames=args.deadline_frames,
        reuse_displacement_deg=args.reuse_displacement,
        seed=args.seed,
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = config_from_args(args)
        service = BatchServiceModel(
            fixed_s=args.service_fixed_ms * 1e-3,
            per_sample_s=args.service_per_sample_ms * 1e-3,
        )
    except ValueError as err:
        parser.error(str(err))
    if args.kill_at_event is not None and args.checkpoint_dir is None:
        parser.error("--kill-at-event requires --checkpoint-dir")
    if args.slo is not None and args.checkpoint_dir is not None:
        parser.error("--slo and --checkpoint-dir are mutually exclusive "
                     "(the SLO engine is not checkpointed)")
    fleet = build_fleet(config)
    obs = obs_from_args(args)
    slo_engine = None
    if args.slo is not None:
        from repro.obs.config import Obs, ObsConfig
        from repro.obs.slo import SloConfigError, SloEngine, resolve_slo_config

        if obs is None:
            obs = Obs(ObsConfig(top_k=args.obs_top))
        try:
            slo_config = resolve_slo_config(args.slo, config.deadline_s)
        except SloConfigError as err:
            parser.error(str(err))
        slo_engine = SloEngine(slo_config, obs)
    if args.checkpoint_dir is not None:
        runtime = ServeRuntime(config, service=service, fleet=fleet, obs=obs)
        report = run_checkpointed_cli(runtime, args, parser)
        if not isinstance(report, FleetReport):
            return report  # simulated crash exit code
    elif slo_engine is not None:
        runtime = ServeRuntime(config, service=service, fleet=fleet, obs=obs)
        runtime.attach_slo(slo_engine)
        report = runtime.run()
    else:
        report = serve_fleet(config, service=service, fleet=fleet, obs=obs)
    print(format_fleet_report(report, max_session_rows=args.max_session_rows))
    if slo_engine is not None:
        from repro.obs.slo import evaluate_summary, format_summary_verdicts
        from repro.serve.telemetry import fleet_summary_metrics

        print("\n--- SLO verdicts ---\n")
        print(slo_engine.format_verdicts())
        summary_objectives = slo_engine.config.summary_objectives
        if summary_objectives:
            rows = evaluate_summary(
                summary_objectives, fleet_summary_metrics(report)
            )
            print()
            print(format_summary_verdicts(rows))
    if args.obs:
        from repro.recover.configio import serve_config_to_dict, service_model_to_dict

        resolved = {
            "kind": "serve",
            "config": serve_config_to_dict(config),
            "service": service_model_to_dict(service),
        }
        out_dir = resolve_obs_out(args.obs_out, "serve", resolved)
        emit_obs_artifacts(obs, out_dir, top_k=args.obs_top)
        if slo_engine is not None:
            emit_slo_artifacts(slo_engine, out_dir)
    if args.compare_sequential:
        baseline = serve_fleet(
            config.sequential_baseline(), service=service, fleet=fleet
        )
        print("\n--- sequential baseline (max_batch=1) ---\n")
        print(format_fleet_report(baseline, max_session_rows=args.max_session_rows))
        batched = report.predict_goodput_fps
        solo = baseline.predict_goodput_fps
        ratio = batched / solo if solo > 0 else float("inf")
        print(
            f"\nCross-session batching: {batched:.0f} vs {solo:.0f} "
            f"fresh predictions/s ({ratio:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
