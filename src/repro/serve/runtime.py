"""Deterministic discrete-event serving loop.

One :class:`ServeRuntime` multiplexes a fleet of HMD client sessions onto a
:class:`~repro.serve.workers.WorkerPool`.  The loop is a classic event heap
with three event kinds, processed in deterministic order (time, then kind,
then insertion sequence):

* ``COMPLETE`` — a worker finished a batch; record per-frame latencies,
  free the worker, and greedily re-dispatch.
* ``WINDOW`` — a batch-formation window expired; dispatch a partial batch
  if a worker is idle.
* ``ARRIVAL`` — a frame entered the system.  Saccade/reuse frames bypass
  the pool entirely (Algorithm 1 serves them on-device); predict frames
  pass admission control and join the cross-session batcher.

Admission control estimates the wait a new predict frame would see —
``ceil((pending + 1) / max_batch) * service(max_batch) / n_workers`` —
and, when it exceeds the queue budget, degrades the frame to gaze reuse
or sheds it per :class:`~repro.serve.config.AdmissionPolicy`.

Everything is seeded and tie-broken explicitly: two runs of the same
config produce byte-identical reports.

The loop is exposed as ``start()`` / ``step()`` / ``finish()`` so the
durability layer (``repro.recover``) can checkpoint between events and
journal each event before applying it; :meth:`ServeRuntime.state_dict`
captures the complete serving state (heap, batcher, pool, per-session
stats) and :meth:`ServeRuntime.restore` warm-restarts from disk with a
bit-identical final report.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

import numpy as np

from repro.obs import NULL_OBS, Obs, PID_BATCHER, PID_WORKERS, session_pid
from repro.serve.batcher import DynamicBatcher
from repro.serve.config import AdmissionPolicy, BatchServiceModel, ServeConfig
from repro.serve.request import ClientSession, FrameRequest, build_fleet, fleet_requests
from repro.serve.telemetry import (
    FleetReport,
    ServeInstruments,
    SessionStats,
    publish_fleet_metrics,
)
from repro.serve.workers import WorkerPool

# Event-kind priorities: at equal timestamps, completions free workers
# before window expiries ask for them, and both precede new arrivals.
_COMPLETE, _WINDOW, _ARRIVAL = 0, 1, 2

#: Optional hook running real batched inference for each dispatched batch.
#: Receives the batch's requests; must return an ``(len(batch), 2)`` array
#: of predicted gaze coordinates, stored on the report keyed by
#: ``(session_id, frame_index)``.
InferenceFn = Callable[[list[FrameRequest]], np.ndarray]


class ServeRuntime:
    """One serving simulation: fleet, batcher, pool, and the event heap."""

    def __init__(
        self,
        config: ServeConfig,
        service: "BatchServiceModel | None" = None,
        inference: "InferenceFn | None" = None,
        fleet: "list[ClientSession] | None" = None,
        obs: "Obs | None" = None,
    ):
        self.config = config
        self.service = service if service is not None else BatchServiceModel()
        self.inference = inference
        self.fleet = fleet if fleet is not None else build_fleet(config)
        if len(self.fleet) != config.n_sessions:
            raise ValueError(
                f"fleet has {len(self.fleet)} sessions, config says {config.n_sessions}"
            )
        self.pool = WorkerPool(config.n_workers, self.service)
        self.batcher = DynamicBatcher(config.max_batch, config.batch_window_s)
        self.stats = [SessionStats(s.session_id) for s in self.fleet]
        self.predictions: "dict[tuple[int, int], np.ndarray] | None" = (
            {} if inference is not None else None
        )
        self._heap: list[tuple[float, int, int, object]] = []
        self._event_seq = 0
        self._makespan_s = 0.0
        #: Events applied so far — the index the checkpoint/journal layer
        #: (``repro.recover``) keys its snapshots and replay cursor on.
        self.events_processed = 0
        self._started = False
        # Observability is read-only over the simulation: spans carry
        # sim-clock timestamps the event loop already computed, so a
        # traced run is bit-identical to an untraced one.
        self.obs = obs if obs is not None else NULL_OBS
        self._instruments: "ServeInstruments | None" = None
        if self.obs.enabled:
            self._instruments = ServeInstruments(self.obs.metrics)
            self._declare_tracks()
        #: Optional online SLO engine (see :meth:`attach_slo`): ticked on
        #: the sim clock after every event, finalized with the report.
        self.slo = None

    def attach_slo(self, engine) -> None:
        """Attach a :class:`repro.obs.slo.SloEngine` to this run.

        The engine reads the live instruments, so observability must be
        enabled; it is evaluated at fixed sim-clock boundaries, keeping
        the run (and its alert stream) deterministic.
        """
        if not self.obs.enabled:
            raise ValueError("attach_slo requires an enabled Obs bundle")
        self.slo = engine

    # ------------------------------------------------------------------
    # Tracing (no-ops unless ``obs`` is enabled)
    # ------------------------------------------------------------------
    def _declare_tracks(self) -> None:
        tracer = self.obs.tracer
        tracer.declare_track(PID_WORKERS, "serve.workers")
        for worker_id in range(self.config.n_workers):
            tracer.declare_track(
                PID_WORKERS, "serve.workers", tid=worker_id,
                thread_name=f"worker-{worker_id}",
            )
        tracer.declare_track(PID_BATCHER, "serve.batcher", thread_name="assemble")
        for session in self.fleet:
            tracer.declare_track(
                session_pid(session.session_id),
                f"session-{session.session_id}",
                thread_name="frames",
            )

    def _trace_frame(self, request: FrameRequest, path: str, latency_s: float) -> None:
        """Session-track frame span (arrival -> completion) + counters."""
        self.obs.tracer.record_span(
            "frame",
            request.arrival_s,
            latency_s,
            cat="serve",
            pid=session_pid(request.session_id),
            args={"path": path, "frame": request.frame_index},
        )
        assert self._instruments is not None
        self._instruments.frame_counter(path).inc()
        self._instruments.latency.observe(latency_s)
        if latency_s > self.config.deadline_s:
            self._instruments.misses.inc()

    def _trace_batch(
        self,
        worker_id: int,
        batch: list[FrameRequest],
        now: float,
        done_s: float,
        ok: bool = True,
    ) -> None:
        """Batcher/worker/session spans of one dispatched batch."""
        tracer = self.obs.tracer
        instruments = self._instruments
        assert instruments is not None
        oldest = batch[0].arrival_s
        tracer.record_span(
            "batch.assemble", oldest, now - oldest, cat="serve",
            pid=PID_BATCHER, args={"batch_size": len(batch)},
        )
        tracer.record_span(
            "batch.service", now, done_s - now, cat="serve",
            pid=PID_WORKERS, tid=worker_id,
            args={"batch_size": len(batch), "ok": ok},
        )
        for request in batch:
            pid = session_pid(request.session_id)
            wait = now - request.arrival_s
            tracer.record_span(
                "queue.wait", request.arrival_s, wait, cat="serve",
                pid=pid, args={"frame": request.frame_index},
            )
            tracer.record_span(
                "service", now, done_s - now, cat="serve",
                pid=pid, args={"frame": request.frame_index, "worker": worker_id},
            )
            instruments.queue_wait.observe(wait)
        instruments.batches.inc()
        instruments.batch_size.observe(len(batch))

    def _trace_degraded(self, request: FrameRequest, now: float, cause: str) -> None:
        done = now + self.config.reuse_bypass_s
        self.obs.tracer.instant(
            f"degrade.{cause}", now, cat="serve",
            pid=session_pid(request.session_id),
            args={"frame": request.frame_index},
        )
        assert self._instruments is not None
        self._instruments.degraded.inc()
        self._trace_frame(request, "degraded", done - request.arrival_s)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, time_s: float, kind: int, payload: object) -> None:
        heapq.heappush(self._heap, (time_s, kind, self._event_seq, payload))
        self._event_seq += 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record_completion(self, request: FrameRequest, done_s: float) -> None:
        latency = done_s - request.arrival_s
        self.stats[request.session_id].record(
            request.path, latency, self.config.deadline_s
        )
        self._makespan_s = max(self._makespan_s, done_s)
        if self.obs.enabled:
            self._trace_frame(request, request.path, latency)

    def _degrade_now(
        self, request: FrameRequest, now: float, cause: str = "admission"
    ) -> None:
        """Serve the frame from the buffered gaze (Algorithm-1 reuse
        mechanism): on time but stale, recorded in the explicit
        ``degraded`` bucket."""
        done = now + self.config.reuse_bypass_s
        self.stats[request.session_id].record_degraded(
            self.config.reuse_bypass_s, self.config.deadline_s
        )
        self._makespan_s = max(self._makespan_s, done)
        if self.obs.enabled:
            self._trace_degraded(request, now, cause)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def estimated_wait_s(self) -> float:
        """Wait a newly admitted predict frame would see: full batches of
        queued + in-flight + this frame, spread across the pool."""
        pending = len(self.batcher) + self.pool.in_flight_frames() + 1
        batches = math.ceil(pending / self.config.max_batch)
        return (
            batches
            * self.service.service_s(self.config.max_batch)
            / self.config.n_workers
        )

    def _admit(self, request: FrameRequest, now: float) -> bool:
        if self.config.admission is AdmissionPolicy.ALWAYS:
            return True
        if self.estimated_wait_s() <= self.config.queue_budget_s:
            return True
        if self.config.admission is AdmissionPolicy.DEGRADE:
            self._degrade_now(request, now, cause="admission")
        else:  # SHED
            self.stats[request.session_id].record_shed(request.path)
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "shed", now, cat="serve",
                    pid=session_pid(request.session_id),
                    args={"frame": request.frame_index},
                )
                assert self._instruments is not None
                self._instruments.shed.inc()
        return False

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _note_dispatch(self, batch: list[FrameRequest], now: float) -> None:
        """Hook: a batch left the queue for a worker.  The sharded fleet
        overrides this to window per-shard queue waits for its
        rebalancer; the base runtime does nothing."""

    def _try_dispatch(self, now: float) -> None:
        while self.batcher.ready(now):
            worker = self.pool.idle_worker(now)
            if worker is None:
                return  # next COMPLETE event will retry
            batch = self.batcher.take()
            self._note_dispatch(batch, now)
            done_s = self.pool.dispatch(worker, len(batch), now)
            if self.inference is not None:
                outputs = np.asarray(self.inference(batch))
                if outputs.shape != (len(batch), 2):
                    raise ValueError(
                        f"inference hook returned shape {outputs.shape}, "
                        f"expected ({len(batch)}, 2)"
                    )
                assert self.predictions is not None
                for request, gaze in zip(batch, outputs):
                    self.predictions[(request.session_id, request.frame_index)] = gaze
            if self.obs.enabled:
                self._trace_batch(worker.worker_id, batch, now, done_s)
            self._push(done_s, _COMPLETE, (worker, batch))

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, request: FrameRequest, now: float) -> None:
        if request.path == "saccade":
            self._record_completion(request, now + self.config.saccade_bypass_s)
            return
        if request.path == "reuse":
            self._record_completion(request, now + self.config.reuse_bypass_s)
            return
        if not self._admit(request, now):
            return
        self.batcher.enqueue(request)
        self._try_dispatch(now)
        if len(self.batcher) > 0 and self.batcher.window_s > 0:
            deadline = self.batcher.next_deadline_s()
            if deadline is not None:
                self._push(deadline, _WINDOW, None)

    def _on_complete(
        self, worker_batch: "tuple[object, list[FrameRequest]]", now: float
    ) -> None:
        worker, batch = worker_batch
        self.pool.complete(worker)  # type: ignore[arg-type]
        for request in batch:
            self._record_completion(request, now)
        self._try_dispatch(now)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Seed the event heap with every frame arrival (idempotent)."""
        if self._started:
            return
        for request in fleet_requests(self.fleet, self.config.deadline_s):
            self._push(request.arrival_s, _ARRIVAL, request)
        self._started = True

    def peek_event(self) -> "tuple[float, int, int] | None":
        """``(time_s, kind, seq)`` of the next event, or None when done.

        The write-ahead journal logs this triple *before* the event is
        applied; on restore the replay cross-checks each journal record
        against the regenerated event stream.
        """
        if not self._heap:
            return None
        time_s, kind, seq, _ = self._heap[0]
        return (time_s, kind, seq)

    def step(self) -> bool:
        """Apply the next event; False once the heap is empty."""
        if not self._heap:
            return False
        now, kind, _, payload = heapq.heappop(self._heap)
        if kind == _ARRIVAL:
            self._on_arrival(payload, now)  # type: ignore[arg-type]
        elif kind == _COMPLETE:
            self._on_complete(payload, now)  # type: ignore[arg-type]
        else:  # _WINDOW
            self._try_dispatch(now)
        self.events_processed += 1
        if self.slo is not None:
            self.slo.maybe_evaluate(now)
        return True

    def finish(self) -> FleetReport:
        """Close accounting and build the report (heap must be empty)."""
        if self._heap:
            raise RuntimeError(
                f"finish() with {len(self._heap)} events still pending"
            )
        # End-of-run flush: anything still queued is accounted explicitly
        # as pending-at-shutdown — admitted work is never silently lost.
        for request in self.batcher.drain():
            self.stats[request.session_id].record_pending(request.path)
        self.batcher.check_accounting()
        duration = max(self.config.duration_s, self._makespan_s)
        report = self._build_report(duration)
        if self.obs.enabled:
            publish_fleet_metrics(report, self.obs.metrics)
        if self.slo is not None:
            self.slo.finalize(duration)
        return report

    def run(self) -> FleetReport:
        self.start()
        while self.step():
            pass
        return self.finish()

    def _build_report(self, duration: float) -> FleetReport:
        return FleetReport(
            sessions=self.stats,
            duration_s=duration,
            deadline_s=self.config.deadline_s,
            batch_occupancy=dict(self.pool.batch_occupancy),
            worker_utilization=self.pool.utilization(duration),
            mean_batch_size=self.pool.mean_batch_size(),
            n_workers=self.config.n_workers,
            max_batch=self.config.max_batch,
            predictions=self.predictions,
            faults=self._fault_report(),
        )

    def _fault_report(self):
        """Fault telemetry attached to the report (None outside chaos runs)."""
        return None

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    #: Checkpoint kind tag; ``repro.recover`` maps it back to the class.
    RUNTIME_KIND = "serve"

    def _stats_values(self) -> "list[SessionStats]":
        """Session accumulators in serialization order.  The sharded
        fleet keys ``stats`` by session id instead of a dense list and
        overrides this (and :meth:`_load_stats`) accordingly."""
        return self.stats

    def _load_stats(self, saved: list) -> None:
        if len(saved) != len(self.stats):
            raise ValueError(
                f"snapshot has {len(saved)} sessions, "
                f"runtime has {len(self.stats)}"
            )
        for stats, entry in zip(self.stats, saved):
            stats.load_state(entry)

    def _encode_payload(self, kind: int, payload: object) -> object:
        """JSON-safe form of one heap payload (kind-specific)."""
        if kind == _ARRIVAL:
            return payload.to_dict()  # type: ignore[union-attr]
        if kind == _COMPLETE:
            worker, batch = payload  # type: ignore[misc]
            return {
                "worker": worker.worker_id,
                "batch": [request.to_dict() for request in batch],
            }
        return None  # _WINDOW carries no payload

    def _decode_payload(self, kind: int, data: object) -> object:
        if kind == _ARRIVAL:
            return FrameRequest.from_dict(data)  # type: ignore[arg-type]
        if kind == _COMPLETE:
            worker = self.pool.workers[int(data["worker"])]  # type: ignore[index]
            batch = [FrameRequest.from_dict(r) for r in data["batch"]]  # type: ignore[index]
            return (worker, batch)
        return None

    def state_dict(self) -> dict:
        """Full JSON-safe snapshot of the serving state.

        The heap is serialized in its *raw list order* (already a valid
        binary heap) and restored verbatim, so subsequent pushes and pops
        reproduce the uninterrupted run's event ordering exactly — the
        load-bearing detail behind bit-identical recovery.
        """
        predictions = None
        if self.predictions is not None:
            predictions = [
                [sid, frame, [float(x) for x in gaze]]
                for (sid, frame), gaze in sorted(self.predictions.items())
            ]
        return {
            "started": self._started,
            "events_processed": self.events_processed,
            "event_seq": self._event_seq,
            "makespan_s": self._makespan_s,
            "heap": [
                [time_s, kind, seq, self._encode_payload(kind, payload)]
                for time_s, kind, seq, payload in self._heap
            ],
            "batcher": self.batcher.state_dict(),
            "pool": self.pool.state_dict(),
            "stats": [stats.state_dict() for stats in self._stats_values()],
            "predictions": predictions,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto a freshly
        constructed runtime of the same config."""
        self._started = bool(state["started"])
        self.events_processed = int(state["events_processed"])
        self._event_seq = int(state["event_seq"])
        self._makespan_s = float(state["makespan_s"])
        self.pool.load_state(state["pool"])  # before heap: COMPLETE payloads
        self._heap = [
            (float(time_s), int(kind), int(seq), self._decode_payload(int(kind), data))
            for time_s, kind, seq, data in state["heap"]
        ]
        self.batcher.load_state(state["batcher"])
        self._load_stats(state["stats"])
        if state["predictions"] is not None:
            if self.predictions is None:
                self.predictions = {}
            self.predictions = {
                (int(sid), int(frame)): np.asarray(gaze, dtype=np.float64)
                for sid, frame, gaze in state["predictions"]
            }

    @classmethod
    def restore(
        cls,
        directory,
        service: "BatchServiceModel | None" = None,
        inference: "InferenceFn | None" = None,
        obs: "Obs | None" = None,
    ) -> "ServeRuntime":
        """Warm-restart from the latest valid checkpoint in ``directory``.

        Loads the checkpoint, replays the write-ahead journal tail
        deterministically, and returns a runtime ready to continue; see
        :func:`repro.recover.restore_runtime` for the full contract.
        """
        from repro.recover.manager import restore_runtime

        restored = restore_runtime(
            directory, service=service, inference=inference, obs=obs
        )
        runtime = restored.runtime
        if not isinstance(runtime, cls):
            raise TypeError(
                f"checkpoint holds a {type(runtime).__name__}, "
                f"not a {cls.__name__}"
            )
        return runtime


def serve_fleet(
    config: ServeConfig,
    service: "BatchServiceModel | None" = None,
    inference: "InferenceFn | None" = None,
    fleet: "list[ClientSession] | None" = None,
    obs: "Obs | None" = None,
) -> FleetReport:
    """Run one serving simulation and return its :class:`FleetReport`."""
    return ServeRuntime(
        config, service=service, inference=inference, fleet=fleet, obs=obs
    ).run()
