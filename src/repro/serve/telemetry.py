"""Per-session and fleet-level telemetry of a serving run.

Reuses the system layer's metric conventions: latencies in seconds with
millisecond formatting (``repro.system.metrics``), the shared
:func:`~repro.system.metrics.percentile_summary` implementation for
every percentile in a report, and the aligned-text table renderer.

When a run is observed (``repro.obs``), the runtime publishes live into
a :class:`~repro.obs.metrics.MetricsRegistry` through
:class:`ServeInstruments`; :func:`publish_fleet_metrics` adds the
end-of-run aggregates so the registry — not a re-walk of these
accumulators — is the single source of the exported ``metrics.prom``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.system.metrics import (
    fmt_ms,
    percentile_key,
    percentile_summary,
    table_to_text,
)


@dataclass
class SessionStats:
    """Accumulators for one client session.

    Every generated frame lands in exactly one terminal bucket —
    completed (a latency sample), shed, pending-at-shutdown, or lost to an
    input fault before it could arrive — so ``total_frames`` is exact
    conservation, never an estimate.
    """

    session_id: int
    latencies_s: list[float] = field(default_factory=list)
    misses: int = 0
    shed: int = 0
    degraded: int = 0
    pending: int = 0
    lost_input: int = 0
    #: Frames that were physically on a shard (queued or in flight on a
    #: worker) when it was killed — the *only* frames a shard failover
    #: may lose (the bounded-loss guarantee of ``repro.serve.fleet``).
    lost_shard: int = 0
    #: Frames the lossy transport gave up on (every retransmit dropped)
    #: under the ``on_exhaust="drop"`` policy — the only frames the net
    #: layer may lose, and only when the policy says so.
    lost_net: int = 0
    #: Per-path frame counts.  Degraded frames get their *own* bucket —
    #: they are served by the reuse mechanism but are not reuse-path
    #: decisions, so attributing them to "reuse" would over-count that
    #: path in every report.  Invariant (asserted by tests):
    #: ``sum(counts.values()) == completed + shed + pending``.
    counts: dict[str, int] = field(
        default_factory=lambda: {
            "saccade": 0,
            "reuse": 0,
            "predict": 0,
            "degraded": 0,
        }
    )

    @property
    def completed(self) -> int:
        return len(self.latencies_s)

    @property
    def total_frames(self) -> int:
        return (
            self.completed
            + self.shed
            + self.pending
            + self.lost_input
            + self.lost_shard
            + self.lost_net
        )

    def record(self, path: str, latency_s: float, deadline_s: float) -> None:
        self.counts[path] = self.counts.get(path, 0) + 1
        self.latencies_s.append(latency_s)
        if latency_s > deadline_s:
            self.misses += 1

    def record_degraded(self, latency_s: float, deadline_s: float) -> None:
        """A frame served from the buffered gaze instead of a fresh
        prediction (admission pressure, retry exhaustion, watchdog).

        Lands in the explicit ``"degraded"`` path bucket, not
        ``"reuse"`` — path-count sums stay exact.
        """
        self.degraded += 1
        self.record("degraded", latency_s, deadline_s)

    def record_shed(self, path: str) -> None:
        self.counts[path] = self.counts.get(path, 0) + 1
        self.shed += 1

    def record_pending(self, path: str) -> None:
        """A frame still queued when the run ended (flushed, not lost)."""
        self.counts[path] = self.counts.get(path, 0) + 1
        self.pending += 1

    def record_lost_input(self) -> None:
        """A frame the sensor never delivered (input-fault drop)."""
        self.lost_input += 1

    def record_lost_shard(self) -> None:
        """A frame that died with its shard (queued or in flight at the
        kill instant) — bounded failover loss, never a silent leak."""
        self.lost_shard += 1

    def record_lost_net(self) -> None:
        """A frame the transport exhausted its retransmits on under the
        ``on_exhaust="drop"`` policy — accounted, never silently leaked."""
        self.lost_net += 1

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            raise ValueError(f"session {self.session_id} has no completed frames")
        return percentile_summary(self.latencies_s, (q,))[percentile_key(q)] * 1e3

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "latencies_s": list(self.latencies_s),
            "misses": self.misses,
            "shed": self.shed,
            "degraded": self.degraded,
            "pending": self.pending,
            "lost_input": self.lost_input,
            "lost_shard": self.lost_shard,
            "lost_net": self.lost_net,
            "counts": dict(self.counts),
        }

    def load_state(self, state: dict) -> None:
        if int(state["session_id"]) != self.session_id:
            raise ValueError(
                f"snapshot session {state['session_id']} does not match "
                f"stats slot {self.session_id}"
            )
        self.latencies_s = [float(x) for x in state["latencies_s"]]
        self.misses = int(state["misses"])
        self.shed = int(state["shed"])
        self.degraded = int(state["degraded"])
        self.pending = int(state["pending"])
        self.lost_input = int(state["lost_input"])
        # Checkpoints from before the sharded fleet predate this bucket;
        # a single-runtime run cannot lose frames to a shard kill.
        self.lost_shard = int(state.get("lost_shard", 0))
        # Likewise pre-transport checkpoints predate the net bucket.
        self.lost_net = int(state.get("lost_net", 0))
        self.counts = {str(k): int(v) for k, v in state["counts"].items()}

    @property
    def miss_rate(self) -> float:
        return self.misses / self.completed if self.completed else 0.0


@dataclass
class FaultReport:
    """Fault-injection and degradation telemetry of one chaos run.

    Populated by ``repro.faults.ChaosRuntime``; attached to the
    :class:`FleetReport` so fault accounting travels with the serving
    numbers it explains.  Everything here is derived from seeded streams
    and deterministic event ordering — two runs of the same scenario
    produce equal reports (the chaos-smoke CI job asserts exactly that).
    """

    # Input faults (sensor / link / eye).
    input_dropped: int = 0
    noise_burst_frames: int = 0
    occluded_frames: int = 0
    mipi_corrupted_frames: int = 0
    # Serving faults and recovery.
    batch_failures: int = 0
    worker_crash_failures: int = 0
    worker_stall_timeouts: int = 0
    frames_requeued: int = 0
    retries_scheduled: int = 0
    retry_exhausted_degraded: int = 0
    deadline_degraded: int = 0
    occlusion_degraded: int = 0
    breaker_transitions: list[tuple[float, int, str, str]] = field(
        default_factory=list
    )  # (time_s, worker_id, from_state, to_state)
    # Watchdog degradation.
    degradation_transitions: list[tuple[float, int, str, str]] = field(
        default_factory=list
    )  # (time_s, session_id, from_level, to_level)
    degradation_dwell_s: dict[str, float] = field(default_factory=dict)
    watchdog_reuse_frames: int = 0
    watchdog_full_res_frames: int = 0
    widened_delta_theta_deg: float = 0.0
    # Silicon soft errors and the SDC guard (repro.reliability): upsets
    # applied to the tracker datapath, how many the plausibility gate
    # caught (detected), resolved by a clean recompute, degraded to gaze
    # reuse, or let through as silent data corruption.
    soft_errors_injected: int = 0
    sdc_detected: int = 0
    sdc_recomputed: int = 0
    sdc_fallback_degraded: int = 0
    sdc_escaped: int = 0

    @property
    def breaker_opens(self) -> int:
        return sum(1 for _, _, _, to in self.breaker_transitions if to == "OPEN")

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    _COUNTER_FIELDS = (
        "input_dropped",
        "noise_burst_frames",
        "occluded_frames",
        "mipi_corrupted_frames",
        "batch_failures",
        "worker_crash_failures",
        "worker_stall_timeouts",
        "frames_requeued",
        "retries_scheduled",
        "retry_exhausted_degraded",
        "deadline_degraded",
        "occlusion_degraded",
        "watchdog_reuse_frames",
        "watchdog_full_res_frames",
        "soft_errors_injected",
        "sdc_detected",
        "sdc_recomputed",
        "sdc_fallback_degraded",
        "sdc_escaped",
    )

    def state_dict(self) -> dict:
        state = {name: getattr(self, name) for name in self._COUNTER_FIELDS}
        state["breaker_transitions"] = [list(t) for t in self.breaker_transitions]
        state["degradation_transitions"] = [
            list(t) for t in self.degradation_transitions
        ]
        state["degradation_dwell_s"] = dict(self.degradation_dwell_s)
        state["widened_delta_theta_deg"] = self.widened_delta_theta_deg
        return state

    def load_state(self, state: dict) -> None:
        for name in self._COUNTER_FIELDS:
            setattr(self, name, int(state[name]))
        self.breaker_transitions = [
            (float(t), int(wid), str(src), str(dst))
            for t, wid, src, dst in state["breaker_transitions"]
        ]
        self.degradation_transitions = [
            (float(t), int(sid), str(src), str(dst))
            for t, sid, src, dst in state["degradation_transitions"]
        ]
        self.degradation_dwell_s = {
            str(k): float(v) for k, v in state["degradation_dwell_s"].items()
        }
        self.widened_delta_theta_deg = float(state["widened_delta_theta_deg"])

    def summary(self) -> dict[str, float]:
        return {
            "input_dropped": float(self.input_dropped),
            "occluded_frames": float(self.occluded_frames),
            "mipi_corrupted": float(self.mipi_corrupted_frames),
            "batch_failures": float(self.batch_failures),
            "frames_requeued": float(self.frames_requeued),
            "retry_exhausted": float(self.retry_exhausted_degraded),
            "deadline_degraded": float(self.deadline_degraded),
            "occlusion_degraded": float(self.occlusion_degraded),
            "breaker_opens": float(self.breaker_opens),
            "watchdog_reuse": float(self.watchdog_reuse_frames),
            "watchdog_full_res": float(self.watchdog_full_res_frames),
            "soft_errors_injected": float(self.soft_errors_injected),
            "sdc_detected": float(self.sdc_detected),
            "sdc_recomputed": float(self.sdc_recomputed),
            "sdc_fallback_degraded": float(self.sdc_fallback_degraded),
            "sdc_escaped": float(self.sdc_escaped),
            "widened_delta_theta_deg": self.widened_delta_theta_deg,
        }


@dataclass
class FleetReport:
    """Aggregate results of one serving simulation."""

    sessions: list[SessionStats]
    duration_s: float
    deadline_s: float
    batch_occupancy: dict[int, int]
    worker_utilization: float
    mean_batch_size: float
    n_workers: int
    max_batch: int
    predictions: "dict[tuple[int, int], np.ndarray] | None" = None
    faults: "FaultReport | None" = None
    #: Sharded-fleet section (``repro.serve.fleet.FleetSection``): per-
    #: shard rows plus the migration/failover/rebalance event log.  Duck-
    #: typed (``state_dict()`` / ``format()``) so single-runtime reports
    #: never import the fleet package; ``None`` outside fleet runs.
    shards: "object | None" = None
    #: Net-transport section (``repro.serve.fleet.NetSection``): protocol
    #: counters, detector transitions, detection latencies.  Duck-typed
    #: like ``shards``; ``None`` unless the run used the lossy transport.
    net: "object | None" = None

    # ------------------------------------------------------------------
    # Fleet aggregates
    # ------------------------------------------------------------------
    @property
    def all_latencies_s(self) -> np.ndarray:
        merged = [lat for s in self.sessions for lat in s.latencies_s]
        return np.asarray(merged, dtype=np.float64)

    @property
    def completed_frames(self) -> int:
        return sum(s.completed for s in self.sessions)

    @property
    def total_frames(self) -> int:
        return sum(s.total_frames for s in self.sessions)

    @property
    def pending_at_shutdown(self) -> int:
        """Frames still queued when the run ended (flushed and accounted,
        not silently dropped)."""
        return sum(s.pending for s in self.sessions)

    @property
    def lost_input_frames(self) -> int:
        """Frames the sensors never delivered (input-fault drops)."""
        return sum(s.lost_input for s in self.sessions)

    @property
    def lost_shard_frames(self) -> int:
        """Frames that died with a killed shard (bounded failover loss)."""
        return sum(s.lost_shard for s in self.sessions)

    @property
    def lost_net_frames(self) -> int:
        """Frames the transport exhausted under ``on_exhaust="drop"``."""
        return sum(s.lost_net for s in self.sessions)

    @property
    def served_predict_frames(self) -> int:
        """Fresh predictions actually served (degraded frames sit in
        their own bucket; shed and pending-at-shutdown predict frames
        are not served)."""
        return (
            sum(s.counts["predict"] for s in self.sessions)
            - sum(s.shed for s in self.sessions)
            - sum(s.pending for s in self.sessions)
        )

    @property
    def throughput_fps(self) -> float:
        """Completed frames (all paths) per simulated second."""
        return self.completed_frames / self.duration_s

    @property
    def predict_goodput_fps(self) -> float:
        """Fresh predictions served per simulated second — the number
        cross-session batching exists to raise."""
        return self.served_predict_frames / self.duration_s

    def latency_percentile_ms(self, q: float) -> float:
        latencies = self.all_latencies_s
        if latencies.size == 0:
            raise ValueError("no completed frames in the fleet")
        return percentile_summary(latencies, (q,))[percentile_key(q)] * 1e3

    @property
    def deadline_miss_rate(self) -> float:
        completed = self.completed_frames
        return sum(s.misses for s in self.sessions) / completed if completed else 0.0

    @property
    def shed_rate(self) -> float:
        total = self.total_frames
        return sum(s.shed for s in self.sessions) / total if total else 0.0

    @property
    def degrade_rate(self) -> float:
        total = self.total_frames
        return sum(s.degraded for s in self.sessions) / total if total else 0.0

    def summary(self) -> dict[str, float]:
        tails = percentile_summary(self.all_latencies_s, (50, 95, 99))
        return {
            "sessions": float(len(self.sessions)),
            "throughput_fps": self.throughput_fps,
            "predict_goodput_fps": self.predict_goodput_fps,
            "p50_ms": tails["p50"] * 1e3,
            "p95_ms": tails["p95"] * 1e3,
            "p99_ms": tails["p99"] * 1e3,
            "miss_rate": self.deadline_miss_rate,
            "shed_rate": self.shed_rate,
            "degrade_rate": self.degrade_rate,
            "worker_utilization": self.worker_utilization,
            "mean_batch": self.mean_batch_size,
        }


def fleet_report_state(report: FleetReport) -> dict:
    """Canonical JSON-safe form of a :class:`FleetReport`.

    Two reports serialize to equal bytes (via ``repro.recover.codec``)
    iff every session accumulator, pool statistic, prediction, and fault
    counter is identical — the bit-identity oracle the crash-recovery
    acceptance tests byte-diff.
    """
    predictions = None
    if report.predictions is not None:
        predictions = [
            [sid, frame, [float(x) for x in gaze]]
            for (sid, frame), gaze in sorted(report.predictions.items())
        ]
    return {
        "sessions": [s.state_dict() for s in report.sessions],
        "duration_s": report.duration_s,
        "deadline_s": report.deadline_s,
        "batch_occupancy": sorted(report.batch_occupancy.items()),
        "worker_utilization": report.worker_utilization,
        "mean_batch_size": report.mean_batch_size,
        "n_workers": report.n_workers,
        "max_batch": report.max_batch,
        "predictions": predictions,
        "faults": None if report.faults is None else report.faults.state_dict(),
        # Key present only on fleet runs so single-runtime report bytes
        # (and every pinned byte-diff built on them) are unchanged.
        **(
            {}
            if report.shards is None
            else {"shards": report.shards.state_dict()}
        ),
        **(
            {}
            if report.net is None
            else {"net": report.net.state_dict()}
        ),
    }


# ----------------------------------------------------------------------
# Metrics-registry publishing (repro.obs)
# ----------------------------------------------------------------------
#: Batch sizes are small integers; these buckets resolve them exactly up
#: to 8 and coarsely beyond.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0, 32.0, 64.0)


class ServeInstruments:
    """The live instruments an observed serving run publishes into.

    Created once per run so the hot loop increments pre-resolved
    instruments instead of re-keying the registry per frame.
    """

    def __init__(self, metrics: MetricsRegistry):
        self.metrics = metrics
        self.frames = {
            path: metrics.counter(
                "serve_frames_total", "Completed frames by serving path", path=path
            )
            for path in ("saccade", "reuse", "predict", "degraded", "full_res")
        }
        self.latency = metrics.histogram(
            "serve_frame_latency_seconds", "End-to-end frame latency"
        )
        self.queue_wait = metrics.histogram(
            "serve_queue_wait_seconds", "Batcher wait of dispatched predict frames"
        )
        self.batch_size = metrics.histogram(
            "serve_batch_size", "Dispatched batch sizes", buckets=BATCH_SIZE_BUCKETS
        )
        self.batches = metrics.counter("serve_batches_total", "Batches dispatched")
        self.misses = metrics.counter(
            "serve_deadline_miss_total", "Frames completed past their deadline"
        )
        self.shed = metrics.counter(
            "serve_shed_total", "Frames shed by admission control"
        )
        self.degraded = metrics.counter(
            "serve_degraded_total", "Frames degraded to the buffered gaze"
        )

    def frame_counter(self, path: str):
        counter = self.frames.get(path)
        if counter is None:
            counter = self.metrics.counter(
                "serve_frames_total", "Completed frames by serving path", path=path
            )
            self.frames[path] = counter
        return counter


def publish_fault_metrics(faults: FaultReport, metrics: MetricsRegistry) -> None:
    """Fault/degradation telemetry -> registry (counters + dwell gauges)."""
    for key, value in faults.summary().items():
        if key == "widened_delta_theta_deg":
            metrics.gauge(
                "faults_widened_delta_theta_deg",
                "Worst foveal-radius operating point the watchdog commanded",
            ).set(value)
        else:
            counter = metrics.counter(f"faults_{key}_total")
            counter.inc(value - counter.value)
    for level, seconds in faults.degradation_dwell_s.items():
        metrics.gauge(
            "watchdog_dwell_seconds",
            "Fleet-total seconds spent at each degradation level",
            level=level,
        ).set(seconds)


def fleet_summary_metrics(report: FleetReport) -> dict[str, float]:
    """One flat metrics dict per run: the fleet summary plus, for chaos
    runs, the fault counters under a ``faults_`` prefix.

    This is the run identity every downstream consumer agrees on —
    ``repro.exp`` ledgers, summary-SLO verdicts (``--slo`` on the CLIs),
    and the bench history gate all read these names.
    """
    metrics = dict(report.summary())
    if report.faults is not None:
        for key, value in report.faults.summary().items():
            metrics[f"faults_{key}"] = value
    if report.shards is not None:
        metrics.update(report.shards.summary())
    if report.net is not None:
        for key, value in report.net.summary().items():
            metrics[f"net_{key}" if not key.startswith("net_") else key] = (
                value
            )
    return metrics


def publish_fleet_metrics(report: FleetReport, metrics: MetricsRegistry) -> None:
    """End-of-run aggregates -> registry.

    Together with the live :class:`ServeInstruments` stream this makes
    the registry the single source of the ``metrics.prom`` export.
    """
    gauges = (
        ("serve_sessions", float(len(report.sessions))),
        ("serve_duration_seconds", report.duration_s),
        ("serve_worker_utilization", report.worker_utilization),
        ("serve_mean_batch_size", report.mean_batch_size),
        ("serve_throughput_fps", report.throughput_fps),
        ("serve_predict_goodput_fps", report.predict_goodput_fps),
    )
    for name, value in gauges:
        metrics.gauge(name).set(value)
    pending = metrics.counter(
        "serve_pending_total", "Frames still queued at shutdown"
    )
    pending.inc(report.pending_at_shutdown - pending.value)
    lost = metrics.counter(
        "serve_lost_input_total", "Frames the sensors never delivered"
    )
    lost.inc(report.lost_input_frames - lost.value)
    if report.shards is not None:
        lost_shard = metrics.counter(
            "serve_lost_shard_total", "Frames lost with killed shards"
        )
        lost_shard.inc(report.lost_shard_frames - lost_shard.value)
        for name, value in report.shards.summary().items():
            metrics.gauge(f"fleet_{name}").set(float(value))
    if report.net is not None:
        lost_net = metrics.counter(
            "serve_lost_net_total", "Frames lost to transport exhaustion"
        )
        lost_net.inc(report.lost_net_frames - lost_net.value)
        for name, value in report.net.summary().items():
            gauge_name = name if name.startswith("net_") else f"net_{name}"
            metrics.gauge(gauge_name).set(float(value))
    if report.faults is not None:
        publish_fault_metrics(report.faults, metrics)


def format_fault_report(faults: FaultReport) -> str:
    """The fault/degradation section of a chaos run's report."""
    lines = [
        "Faults injected: "
        f"{faults.input_dropped} frames dropped at sensor, "
        f"{faults.occluded_frames} occluded, "
        f"{faults.noise_burst_frames} in noise bursts, "
        f"{faults.mipi_corrupted_frames} MIPI-corrupted",
        "Serving faults: "
        f"{faults.batch_failures} batch failures "
        f"({faults.worker_crash_failures} crash, "
        f"{faults.worker_stall_timeouts} stall-timeout) | "
        f"{faults.frames_requeued} frames requeued, "
        f"{faults.retries_scheduled} retries, "
        f"{faults.retry_exhausted_degraded} retry-exhausted degraded, "
        f"{faults.deadline_degraded} deadline-degraded",
        "Recovery: "
        f"{faults.breaker_opens} breaker opens "
        f"({len(faults.breaker_transitions)} transitions) | "
        f"watchdog degraded {faults.watchdog_reuse_frames} frames to reuse, "
        f"{faults.watchdog_full_res_frames} to full-res, "
        f"{faults.occlusion_degraded} occlusion-degraded, "
        f"widened delta-theta to {faults.widened_delta_theta_deg:.2f} deg",
    ]
    if faults.soft_errors_injected:
        lines.append(
            "Soft errors: "
            f"{faults.soft_errors_injected} upsets injected | "
            f"guard detected {faults.sdc_detected} "
            f"({faults.sdc_recomputed} recomputed clean, "
            f"{faults.sdc_fallback_degraded} degraded to reuse), "
            f"{faults.sdc_escaped} escaped as silent data corruption"
        )
    if faults.degradation_dwell_s:
        dwell = ", ".join(
            f"{name}:{seconds:.2f}s"
            for name, seconds in sorted(faults.degradation_dwell_s.items())
            if seconds > 0
        )
        lines.append(f"Degradation dwell (fleet-total): {dwell}")
    if faults.breaker_transitions:
        first = faults.breaker_transitions[0]
        lines.append(
            f"First breaker transition: worker {first[1]} "
            f"{first[2]}->{first[3]} at {first[0]:.3f}s"
        )
    return "\n".join(lines)


def format_fleet_report(report: FleetReport, max_session_rows: int = 8) -> str:
    """Human-readable serving report: fleet aggregates, batch occupancy,
    the fault/degradation section (chaos runs), and the first
    ``max_session_rows`` per-session rows."""
    s = report.summary()
    lines = [
        f"Fleet: {len(report.sessions)} sessions, {report.n_workers} workers, "
        f"max batch {report.max_batch}, {report.duration_s:.1f}s window, "
        f"deadline {fmt_ms(report.deadline_s)}",
        f"Throughput {s['throughput_fps']:.0f} frames/s "
        f"(fresh predictions {s['predict_goodput_fps']:.0f}/s) | "
        f"latency p50/p95/p99 {s['p50_ms']:.2f}/{s['p95_ms']:.2f}/{s['p99_ms']:.2f} ms",
        f"Deadline misses {s['miss_rate']:.2%}, shed {s['shed_rate']:.2%}, "
        f"degraded {s['degrade_rate']:.2%} | worker utilization "
        f"{s['worker_utilization']:.0%}, mean batch {s['mean_batch']:.2f}",
    ]
    if (
        report.pending_at_shutdown
        or report.lost_input_frames
        or report.lost_shard_frames
        or report.lost_net_frames
    ):
        accounting = (
            f"Accounting: {report.pending_at_shutdown} pending at shutdown, "
            f"{report.lost_input_frames} lost to input faults"
        )
        if report.lost_shard_frames:
            accounting += (
                f", {report.lost_shard_frames} lost with killed shards"
            )
        if report.lost_net_frames:
            accounting += (
                f", {report.lost_net_frames} lost to transport exhaustion"
            )
        lines.append(accounting)
    if report.shards is not None:
        lines.append("")
        lines.append(report.shards.format())
    if report.net is not None:
        lines.append("")
        lines.append(report.net.format())
    if report.faults is not None:
        lines.append("")
        lines.append(format_fault_report(report.faults))
    if report.batch_occupancy:
        occupancy = ", ".join(
            f"{b}:{c}" for b, c in sorted(report.batch_occupancy.items())
        )
        lines.append(f"Batch occupancy (size:count): {occupancy}")

    headers = ["Session", "Frames", "p50(ms)", "p99(ms)", "Miss", "Shed", "Degr", "Pred%"]
    rows = []
    for stats in report.sessions[:max_session_rows]:
        total = max(stats.total_frames, 1)
        rows.append(
            [
                stats.session_id,
                stats.total_frames,
                f"{stats.percentile_ms(50):.2f}" if stats.completed else "-",
                f"{stats.percentile_ms(99):.2f}" if stats.completed else "-",
                f"{stats.miss_rate:.1%}",
                stats.shed,
                stats.degraded,
                f"{stats.counts['predict'] / total:.0%}",
            ]
        )
    table = table_to_text(headers, rows, min_width=7)
    if len(report.sessions) > max_session_rows:
        table += f"\n... and {len(report.sessions) - max_session_rows} more sessions"
    return "\n".join(lines) + "\n\n" + table
