"""Multi-session gaze-tracking serving runtime.

Simulates a fleet of concurrent HMD clients sharing a pool of batched
POLOViT inference workers: Algorithm-1 saccade/reuse frames are served
on-device at microsecond latencies, while predict-path frames flow
through admission control and a cross-session dynamic batcher.
"""

from repro.serve.batcher import DynamicBatcher
from repro.serve.config import (
    DEFAULT_REUSE_BYPASS_S,
    DEFAULT_SACCADE_BYPASS_S,
    AdmissionPolicy,
    BatchServiceModel,
    ServeConfig,
)
from repro.serve.request import ClientSession, FrameRequest, build_fleet, fleet_requests
from repro.serve.runtime import ServeRuntime, serve_fleet
from repro.serve.telemetry import (
    FaultReport,
    FleetReport,
    SessionStats,
    fleet_report_state,
    format_fault_report,
    format_fleet_report,
)

#: Fleet-facing alias: the serving runtime *is* the fleet runtime
#: (``FleetRuntime.restore(dir)`` warm-restarts a checkpointed run).
FleetRuntime = ServeRuntime
from repro.serve.workers import (
    DispatchOutcome,
    FaultyWorkerPool,
    LatencySpike,
    WorkerCrash,
    WorkerFaultSchedule,
    WorkerPool,
    WorkerStall,
    WorkerState,
)

__all__ = [
    "AdmissionPolicy",
    "BatchServiceModel",
    "ClientSession",
    "DEFAULT_REUSE_BYPASS_S",
    "DEFAULT_SACCADE_BYPASS_S",
    "DispatchOutcome",
    "DynamicBatcher",
    "FaultReport",
    "FaultyWorkerPool",
    "FleetReport",
    "FleetRuntime",
    "FrameRequest",
    "LatencySpike",
    "ServeConfig",
    "ServeRuntime",
    "SessionStats",
    "WorkerCrash",
    "WorkerFaultSchedule",
    "WorkerPool",
    "WorkerStall",
    "WorkerState",
    "build_fleet",
    "fleet_report_state",
    "fleet_requests",
    "format_fault_report",
    "format_fleet_report",
    "serve_fleet",
]
