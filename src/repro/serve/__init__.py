"""Multi-session gaze-tracking serving runtime.

Simulates a fleet of concurrent HMD clients sharing a pool of batched
POLOViT inference workers: Algorithm-1 saccade/reuse frames are served
on-device at microsecond latencies, while predict-path frames flow
through admission control and a cross-session dynamic batcher.
"""

from repro.serve.batcher import DynamicBatcher
from repro.serve.config import (
    DEFAULT_REUSE_BYPASS_S,
    DEFAULT_SACCADE_BYPASS_S,
    AdmissionPolicy,
    BatchServiceModel,
    ServeConfig,
)
from repro.serve.request import ClientSession, FrameRequest, build_fleet, fleet_requests
from repro.serve.runtime import ServeRuntime, serve_fleet
from repro.serve.telemetry import (
    FaultReport,
    FleetReport,
    SessionStats,
    fleet_report_state,
    format_fault_report,
    format_fleet_report,
)

# The sharded fleet (PR 8) replaced the old ``FleetRuntime = ServeRuntime``
# alias with a real multi-shard controller.  Compatibility contract:
# ``FleetRuntime.restore(dir)`` still warm-restarts *any* checkpointed run
# — old single-runtime ("serve"/"chaos") checkpoints restore to their
# original runtime class, new "fleet" checkpoints to the fleet.  Code that
# wants the single-shard loop by name uses ``SingleShardRuntime``.
#
# The fleet names resolve lazily (PEP 562): an eager import here closes
# the cycle serve -> serve.fleet -> faults.injectors -> faults.config ->
# serve.config whenever ``repro.faults`` is the import entry point.
_FLEET_EXPORTS = (
    "FailoverConfig",
    "FleetConfig",
    "FleetRuntime",
    "FleetSection",
    "HashRing",
    "RebalancerConfig",
    "SessionMigration",
    "ShardKill",
    "ShardRuntime",
    "run_fleet",
)


def __getattr__(name: str):
    if name in _FLEET_EXPORTS:
        from repro.serve import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Explicit name for the one-shard event loop the fleet is built from.
SingleShardRuntime = ServeRuntime
from repro.serve.workers import (
    DispatchOutcome,
    FaultyWorkerPool,
    LatencySpike,
    WorkerCrash,
    WorkerFaultSchedule,
    WorkerPool,
    WorkerStall,
    WorkerState,
)

__all__ = [
    "AdmissionPolicy",
    "BatchServiceModel",
    "ClientSession",
    "DEFAULT_REUSE_BYPASS_S",
    "DEFAULT_SACCADE_BYPASS_S",
    "DispatchOutcome",
    "DynamicBatcher",
    "FailoverConfig",
    "FaultReport",
    "FaultyWorkerPool",
    "FleetConfig",
    "FleetReport",
    "FleetRuntime",
    "FleetSection",
    "FrameRequest",
    "HashRing",
    "LatencySpike",
    "RebalancerConfig",
    "ServeConfig",
    "ServeRuntime",
    "SessionMigration",
    "SessionStats",
    "ShardKill",
    "ShardRuntime",
    "SingleShardRuntime",
    "WorkerCrash",
    "WorkerFaultSchedule",
    "WorkerPool",
    "WorkerStall",
    "WorkerState",
    "build_fleet",
    "fleet_report_state",
    "fleet_requests",
    "format_fault_report",
    "format_fleet_report",
    "run_fleet",
    "serve_fleet",
]
