"""Cross-session dynamic batcher.

Predict-path frames from *different* sessions queue here and are grouped
into one vectorized POLOViT forward.  The policy is the standard
size-or-timeout dynamic batching rule:

* dispatch immediately once ``max_batch`` requests are waiting, or
* dispatch whatever is waiting once the oldest request has waited
  ``window_s`` (``window_s = 0`` degenerates to work-conserving greedy
  dispatch — take everything queued the moment a worker frees up).

The batcher is a passive policy object; the event loop owns time and asks
it what to do.  FIFO order is preserved so per-session frame order holds.

Accounting is conservative by construction: every request that enters
(``enqueue`` for fresh admissions, ``requeue`` for retries of failed
batches) is either taken into a batch or still pending, and the runtime
drains leftovers at shutdown — ``admitted + requeued == taken + pending``
holds at every instant (:meth:`check_accounting`).
"""

from __future__ import annotations

from collections import deque

from repro.serve.request import FrameRequest


class DynamicBatcher:
    """FIFO queue with a size-or-timeout batch-formation policy."""

    def __init__(self, max_batch: int, window_s: float = 0.0):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self.max_batch = max_batch
        self.window_s = window_s
        self._queue: deque[FrameRequest] = deque()
        self.admitted_total = 0
        self.requeued_total = 0
        self.taken_total = 0

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, request: FrameRequest) -> None:
        """Admit one fresh request at the back of the queue."""
        self._queue.append(request)
        self.admitted_total += 1

    def requeue(self, requests: list[FrameRequest]) -> None:
        """Re-admit frames from a failed batch (never silently dropped).

        Requeued frames rejoin at the back — their original arrival times
        are old, so the window rule makes them dispatchable immediately;
        FIFO order among the retried frames is preserved.
        """
        for request in requests:
            self._queue.append(request)
        self.requeued_total += len(requests)

    def ready(self, now: float) -> bool:
        """Should a free worker dispatch right now?"""
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch:
            return True
        # Same expression as next_deadline_s(): a window event scheduled
        # at exactly the expiry must see ready() agree despite float
        # rounding (now - arrival >= window can be false at the boundary).
        return now >= self._queue[0].arrival_s + self.window_s

    def next_deadline_s(self) -> "float | None":
        """When the pending batch must dispatch even if it stays small
        (the oldest request's window expiry); None when the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0].arrival_s + self.window_s

    def take(self) -> list[FrameRequest]:
        """Pop the next batch (up to ``max_batch`` requests, FIFO)."""
        batch = []
        while self._queue and len(batch) < self.max_batch:
            batch.append(self._queue.popleft())
        self.taken_total += len(batch)
        return batch

    def extract_session(self, session_id: int) -> list[FrameRequest]:
        """Remove one session's queued frames (live migration / failover).

        Extracted frames count as taken — like :meth:`drain`, the caller
        assumes responsibility for them (requeueing on the destination
        shard, or recording them lost with the dead one) and
        :meth:`check_accounting` stays closed.  FIFO order among the
        remaining and the extracted frames is preserved.
        """
        extracted = [r for r in self._queue if r.session_id == session_id]
        if extracted:
            self._queue = deque(
                r for r in self._queue if r.session_id != session_id
            )
            self.taken_total += len(extracted)
        return extracted

    def drain(self) -> list[FrameRequest]:
        """Remove and return everything still pending (end-of-run flush).

        Drained frames count as taken so :meth:`check_accounting` stays
        closed; the caller is responsible for recording them.
        """
        leftovers = list(self._queue)
        self._queue.clear()
        self.taken_total += len(leftovers)
        return leftovers

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the queue and conservation counters."""
        return {
            "queue": [request.to_dict() for request in self._queue],
            "admitted_total": self.admitted_total,
            "requeued_total": self.requeued_total,
            "taken_total": self.taken_total,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (FIFO order preserved)."""
        self._queue = deque(
            FrameRequest.from_dict(entry) for entry in state["queue"]
        )
        self.admitted_total = int(state["admitted_total"])
        self.requeued_total = int(state["requeued_total"])
        self.taken_total = int(state["taken_total"])

    def check_accounting(self) -> None:
        """Assert the conservation invariant; raises on a leak."""
        entered = self.admitted_total + self.requeued_total
        if entered != self.taken_total + len(self._queue):
            raise RuntimeError(
                f"batcher leak: {entered} entered but "
                f"{self.taken_total} taken + {len(self._queue)} pending"
            )
