"""Cross-session dynamic batcher.

Predict-path frames from *different* sessions queue here and are grouped
into one vectorized POLOViT forward.  The policy is the standard
size-or-timeout dynamic batching rule:

* dispatch immediately once ``max_batch`` requests are waiting, or
* dispatch whatever is waiting once the oldest request has waited
  ``window_s`` (``window_s = 0`` degenerates to work-conserving greedy
  dispatch — take everything queued the moment a worker frees up).

The batcher is a passive policy object; the event loop owns time and asks
it what to do.  FIFO order is preserved so per-session frame order holds.
"""

from __future__ import annotations

from collections import deque

from repro.serve.request import FrameRequest


class DynamicBatcher:
    """FIFO queue with a size-or-timeout batch-formation policy."""

    def __init__(self, max_batch: int, window_s: float = 0.0):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self.max_batch = max_batch
        self.window_s = window_s
        self._queue: deque[FrameRequest] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, request: FrameRequest) -> None:
        self._queue.append(request)

    def ready(self, now: float) -> bool:
        """Should a free worker dispatch right now?"""
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch:
            return True
        return now - self._queue[0].arrival_s >= self.window_s

    def next_deadline_s(self) -> "float | None":
        """When the pending batch must dispatch even if it stays small
        (the oldest request's window expiry); None when the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0].arrival_s + self.window_s

    def take(self) -> list[FrameRequest]:
        """Pop the next batch (up to ``max_batch`` requests, FIFO)."""
        batch = []
        while self._queue and len(batch) < self.max_batch:
            batch.append(self._queue.popleft())
        return batch
