"""Configuration for the multi-session serving runtime.

The runtime multiplexes many concurrent HMD client sessions onto a small
pool of gaze-inference workers.  Three groups of knobs matter:

* **fleet shape** — how many sessions, their frame rate, how long the
  simulated window runs, and how session starts are staggered;
* **worker pool** — how many workers, and the batched service-time model
  ``t(b) = fixed_s + per_sample_s * b`` (a pooled-inference worker pays a
  per-dispatch cost — weight streaming, kernel launch, output readback —
  once per batch, which is exactly what cross-session batching amortizes);
* **admission / batching policy** — the per-frame latency budget beyond
  which arriving work is degraded to gaze reuse or shed outright, and the
  dynamic batcher's size/window limits.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.utils.validation import check_positive

#: POLO accelerator latencies of the two bypass paths (saccade gating and
#: gaze reuse run on-device next to the sensor and never enter the pool).
#: These match the §7 accelerator model's path reports to the microsecond.
DEFAULT_SACCADE_BYPASS_S = 1.2e-4
DEFAULT_REUSE_BYPASS_S = 1.2e-4


class AdmissionPolicy(enum.Enum):
    """What to do with a predict frame the queue cannot serve in budget.

    * ``DEGRADE``: fall back to the session's buffered gaze (the same
      mechanism as Algorithm 1's reuse path) — the frame completes at the
      reuse-bypass latency but no fresh prediction is made.
    * ``SHED``: drop the request; the renderer keeps the stale gaze and
      the frame is counted as shed.
    * ``ALWAYS``: admit everything (useful to expose raw queueing tails).
    """

    DEGRADE = "degrade"
    SHED = "shed"
    ALWAYS = "always"


@dataclass(frozen=True)
class BatchServiceModel:
    """Service time of one batched inference dispatch.

    ``service_s(b) = fixed_s + per_sample_s * b``: the affine model every
    batching system leans on — fixed per-dispatch overhead amortized over
    ``b`` samples.  Defaults model a pooled GPU-class worker running the
    INT8 POLOViT: ~2 ms of per-dispatch overhead and ~0.4 ms of marginal
    per-sample compute.
    """

    fixed_s: float = 2.0e-3
    per_sample_s: float = 4.0e-4

    def __post_init__(self) -> None:
        check_positive("fixed_s", self.fixed_s, strict=False)
        check_positive("per_sample_s", self.per_sample_s)

    def service_s(self, batch_size: int) -> float:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return self.fixed_s + self.per_sample_s * batch_size

    def throughput_fps(self, batch_size: int) -> float:
        """Steady-state frames/s of one worker running back-to-back batches."""
        return batch_size / self.service_s(batch_size)

    @staticmethod
    def from_latency(latency_s: float, amortizable: float = 0.8) -> "BatchServiceModel":
        """Split a measured batch-1 inference latency into the model.

        ``amortizable`` is the fraction of the batch-1 latency that a batched
        execution pays once per dispatch (weight movement dominates POLOViT's
        memory-bound blocks); ``service_s(1)`` equals ``latency_s`` exactly.
        """
        check_positive("latency_s", latency_s)
        if not 0.0 <= amortizable < 1.0:
            raise ValueError(f"amortizable must be in [0, 1), got {amortizable}")
        return BatchServiceModel(
            fixed_s=latency_s * amortizable,
            per_sample_s=latency_s * (1.0 - amortizable),
        )


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one fleet-serving simulation."""

    n_sessions: int = 32
    duration_s: float = 4.0
    fps: float = 100.0
    n_workers: int = 2
    max_batch: int = 8
    batch_window_s: float = 2.0e-3
    admission: AdmissionPolicy = AdmissionPolicy.DEGRADE
    queue_budget_deadlines: float = 2.0
    deadline_frames: float = 1.0
    saccade_bypass_s: float = DEFAULT_SACCADE_BYPASS_S
    reuse_bypass_s: float = DEFAULT_REUSE_BYPASS_S
    reuse_displacement_deg: float = 1.0
    post_saccade_low_res: bool = True
    stagger_s: float = 1.0e-3
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_sessions", self.n_sessions)
        check_positive("duration_s", self.duration_s)
        check_positive("fps", self.fps)
        check_positive("n_workers", self.n_workers)
        check_positive("max_batch", self.max_batch)
        check_positive("batch_window_s", self.batch_window_s, strict=False)
        check_positive("queue_budget_deadlines", self.queue_budget_deadlines)
        check_positive("deadline_frames", self.deadline_frames)
        check_positive("saccade_bypass_s", self.saccade_bypass_s, strict=False)
        check_positive("reuse_bypass_s", self.reuse_bypass_s, strict=False)
        check_positive("reuse_displacement_deg", self.reuse_displacement_deg)
        check_positive("stagger_s", self.stagger_s, strict=False)
        if not isinstance(self.admission, AdmissionPolicy):
            raise ValueError(
                f"admission must be an AdmissionPolicy, got {self.admission!r}"
            )

    @property
    def deadline_s(self) -> float:
        """Per-frame completion deadline (defaults to one frame period)."""
        return self.deadline_frames / self.fps

    @property
    def queue_budget_s(self) -> float:
        """Estimated-wait threshold beyond which admission control fires."""
        return self.queue_budget_deadlines * self.deadline_s

    @property
    def frames_per_session(self) -> int:
        return max(1, int(math.floor(self.duration_s * self.fps)))

    def sequential_baseline(self) -> "ServeConfig":
        """The per-session baseline: same fleet and pool, no cross-session
        batching (every dispatch carries exactly one frame)."""
        return replace(self, max_batch=1, batch_window_s=0.0)
