"""``python -m repro fleet`` — run a sharded fleet simulation.

Routes N sessions onto shards by consistent hashing, optionally kills
shards mid-run (``--kill-shard 2@0.6``), live-migrates sessions
(``--migrate 7@0.3`` or a seeded ``--migration-rate``), and prints the
fleet report with its shard section.  ``--compare-no-kill`` replays the
identical fleet without the chaos schedule so the failover cost is a
byte-level diff away.

``--net`` (or any partition/gray window) routes every frame over the
simulated lossy transport: ``--net-drop/--net-dup/--net-jitter-ms``
shape the links, ``--partition 1,2@0.2:0.35`` cuts shards off the
router for a window, ``--gray-shard 1@0.2:0.4`` makes one alive but
slow, and the heartbeat failure detector — not the omniscient kill
event — drives failover.  ``--compare-no-fault`` replays the identical
fleet with a *clean* network (protocol still on) so the fault cost is
isolated from the protocol overhead.
"""

from __future__ import annotations

import argparse
from dataclasses import fields

from repro.faults.injectors import ShardKill
from repro.faults.netfaults import GraySlow, LinkProfile, PartitionWindow
from repro.obs.cli import (
    add_obs_arguments,
    add_slo_arguments,
    emit_obs_artifacts,
    emit_slo_artifacts,
    obs_from_args,
    resolve_obs_out,
)
from repro.recover.cli import add_checkpoint_arguments, run_checkpointed_cli
from repro.serve.config import BatchServiceModel, ServeConfig
from repro.serve.fleet.config import (
    FailoverConfig,
    FleetConfig,
    RebalancerConfig,
    SessionMigration,
)
from repro.serve.fleet.runtime import FleetRuntime, run_fleet
from repro.serve.fleet.transport import NetConfig
from repro.serve.telemetry import FleetReport, format_fleet_report


def _parse_int(token: str, what: str, flag: str, spec: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ValueError(
            f"{flag}: {token!r} is not an integer {what} in {spec!r}"
        ) from None


def _parse_time(token: str, flag: str, spec: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise ValueError(
            f"{flag}: {token!r} is not a time in seconds in {spec!r}"
        ) from None


def _parse_at(spec: str, flag: str) -> tuple[int, float]:
    """Parse an ``ID@SECONDS`` spec (e.g. ``--kill-shard 2@0.6``),
    naming the exact bad token on failure."""
    ident, sep, at_s = spec.partition("@")
    if not sep or not ident or not at_s:
        raise ValueError(f"{flag} expects ID@SECONDS, got {spec!r}")
    return (
        _parse_int(ident, "id", flag, spec),
        _parse_time(at_s, flag, spec),
    )


def _parse_span(token: str, flag: str, spec: str) -> tuple[float, float]:
    start, sep, stop = token.partition(":")
    if not sep or not start or not stop:
        raise ValueError(
            f"{flag} expects a START:STOP window in seconds, got {spec!r}"
        )
    return (
        _parse_time(start, flag, spec),
        _parse_time(stop, flag, spec),
    )


def _parse_partition(spec: str, flag: str = "--partition") -> PartitionWindow:
    """Parse ``SHARDS@START:STOP`` (e.g. ``1,2@0.2:0.35``)."""
    shards, sep, window = spec.partition("@")
    if not sep or not shards or not window:
        raise ValueError(f"{flag} expects SHARDS@START:STOP, got {spec!r}")
    shard_ids = tuple(
        _parse_int(token, "shard id", flag, spec)
        for token in shards.split(",")
        if token != ""
    )
    if not shard_ids:
        raise ValueError(f"{flag} names no shards in {spec!r}")
    start_s, stop_s = _parse_span(window, flag, spec)
    return PartitionWindow(start_s=start_s, stop_s=stop_s, shard_ids=shard_ids)


def _parse_gray(spec: str, delay_factor: float) -> GraySlow:
    """Parse ``ID@START:STOP`` (e.g. ``--gray-shard 1@0.2:0.4``)."""
    flag = "--gray-shard"
    ident, sep, window = spec.partition("@")
    if not sep or not ident or not window:
        raise ValueError(f"{flag} expects ID@START:STOP, got {spec!r}")
    start_s, stop_s = _parse_span(window, flag, spec)
    return GraySlow(
        shard_id=_parse_int(ident, "shard id", flag, spec),
        start_s=start_s,
        stop_s=stop_s,
        delay_factor=delay_factor,
    )


def _net_from_params(raw: dict) -> NetConfig:
    """Build a :class:`NetConfig` from a partial campaign sub-dict
    (nested ``link`` / ``partitions`` / ``gray`` blocks optional)."""
    raw = dict(raw)
    link = LinkProfile(**raw.pop("link", {}))
    partitions = tuple(
        PartitionWindow(
            start_s=float(w["start_s"]),
            stop_s=float(w["stop_s"]),
            shard_ids=tuple(int(s) for s in w["shard_ids"]),
        )
        for w in raw.pop("partitions", [])
    )
    gray = tuple(GraySlow(**w) for w in raw.pop("gray", []))
    return NetConfig(link=link, partitions=partitions, gray=gray, **raw)


# ----------------------------------------------------------------------
# Campaign entry point (repro.exp)
# ----------------------------------------------------------------------
def resolve_run_config(params: dict) -> dict:
    """Validate campaign params -> the fully resolved canonical dict.

    Params are flat :class:`FleetConfig` field overrides, with ``serve``
    and ``service`` sub-dicts for the template / service model, ``kills``
    as ``[{"shard_id", "at_s"}, ...]``, ``migrations`` as
    ``[{"at_s", "session_id", "to_shard"?}, ...]``, and ``failover`` /
    ``rebalancer`` sub-dicts.
    """
    from repro.recover.configio import (
        fleet_config_to_dict,
        service_model_to_dict,
    )

    params = dict(params)
    try:
        service = BatchServiceModel(**params.pop("service", {}))
        serve = ServeConfig(**params.pop("serve", {}))
        kills = tuple(
            ShardKill(**k) for k in params.pop("kills", [])
        )
        migrations = tuple(
            SessionMigration(**m) for m in params.pop("migrations", [])
        )
        failover = FailoverConfig(**params.pop("failover", {}))
        rebalancer = RebalancerConfig(**params.pop("rebalancer", {}))
        net = _net_from_params(params.pop("net", {}))
    except TypeError as err:
        raise ValueError(f"bad fleet params: {err}") from err
    known = {f.name for f in fields(FleetConfig)} - {
        "serve", "kills", "migrations", "failover", "rebalancer", "net",
    }
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown fleet params: {unknown} (known: {sorted(known)})"
        )
    config = FleetConfig(
        serve=serve,
        kills=kills,
        migrations=migrations,
        failover=failover,
        rebalancer=rebalancer,
        net=net,
        **params,
    )
    return {
        "kind": "fleet",
        "config": fleet_config_to_dict(config),
        "service": service_model_to_dict(service),
    }


def run_from_config(params: dict, obs=None) -> FleetReport:
    """Campaign entry point: params dict -> the run's FleetReport."""
    from repro.recover.configio import (
        fleet_config_from_dict,
        service_model_from_dict,
    )

    resolved = resolve_run_config(params)
    config = fleet_config_from_dict(resolved["config"])
    service = service_model_from_dict(resolved["service"])
    return run_fleet(config, service=service, obs=obs)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    serve = ServeConfig()
    fleet = FleetConfig()
    failover = FailoverConfig()
    rebalancer = RebalancerConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Simulate a sharded serving fleet with consistent-hash "
        "routing, live migration, and shard failover.",
    )
    parser.add_argument("--sessions", type=int, default=serve.n_sessions,
                        help="fleet-total session count")
    parser.add_argument("--shards", type=int, default=fleet.n_shards)
    parser.add_argument("--duration", type=float, default=serve.duration_s,
                        help="simulated window in seconds")
    parser.add_argument("--fps", type=float, default=serve.fps,
                        help="per-session frame rate")
    parser.add_argument("--workers", type=int, default=serve.n_workers,
                        help="workers PER SHARD")
    parser.add_argument("--max-batch", type=int, default=serve.max_batch)
    parser.add_argument("--queue-budget", type=float,
                        default=serve.queue_budget_deadlines,
                        help="admission budget in units of the frame deadline")
    parser.add_argument("--reuse-displacement", type=float,
                        default=serve.reuse_displacement_deg,
                        help="Algorithm-1 reuse threshold in degrees")
    parser.add_argument("--seed", type=int, default=serve.seed)
    parser.add_argument("--vnodes", type=int, default=fleet.vnodes,
                        help="virtual nodes per shard on the hash ring")
    parser.add_argument("--ring-seed", type=int, default=fleet.ring_seed)
    parser.add_argument("--kill-shard", action="append", default=[],
                        metavar="ID@T",
                        help="kill shard ID at T seconds (repeatable)")
    parser.add_argument("--migrate", action="append", default=[],
                        metavar="SID@T",
                        help="live-migrate session SID at T seconds "
                        "(repeatable; ring picks the target)")
    parser.add_argument("--migration-rate", type=float,
                        default=fleet.migration_rate_hz,
                        help="seeded random migrations per second")
    parser.add_argument("--migration-seed", type=int,
                        default=fleet.migration_seed)
    parser.add_argument("--rebalance-interval", type=float,
                        default=rebalancer.interval_s,
                        help="rebalancer tick period in seconds (0 disables)")
    parser.add_argument("--rebalance-high-ms", type=float,
                        default=rebalancer.p95_high_s * 1e3,
                        help="P95 queue wait above which a shard is hot")
    parser.add_argument("--rebalance-low-ms", type=float,
                        default=rebalancer.p95_low_s * 1e3,
                        help="P95 queue wait below which the fleet may shrink")
    parser.add_argument("--guard", type=float, default=failover.guard_s,
                        help="breaker-guarded window after a re-home, seconds")
    net = NetConfig()
    group = parser.add_argument_group(
        "net transport",
        "simulated lossy router<->shard network (any --partition or "
        "--gray-shard implies --net)",
    )
    group.add_argument("--net", action="store_true",
                       help="route frames over the simulated transport")
    group.add_argument("--net-seed", type=int, default=net.seed)
    group.add_argument("--net-drop", type=float, default=0.0,
                       metavar="P", help="per-message drop probability")
    group.add_argument("--net-dup", type=float, default=0.0,
                       metavar="P", help="per-message duplication probability")
    group.add_argument("--net-delay-ms", type=float, default=0.5,
                       help="base one-way link delay")
    group.add_argument("--net-jitter-ms", type=float, default=0.0,
                       help="uniform extra delay (reordering source)")
    group.add_argument("--net-ack-timeout-ms", type=float,
                       default=net.ack_timeout_s * 1e3,
                       help="first retransmit timeout")
    group.add_argument("--net-max-retransmits", type=int,
                       default=net.max_retransmits)
    group.add_argument("--net-backoff", type=float,
                       default=net.backoff_factor,
                       help="exponential backoff factor between retransmits")
    group.add_argument("--net-heartbeat-ms", type=float,
                       default=net.heartbeat_s * 1e3,
                       help="shard heartbeat period")
    group.add_argument("--net-detect-ms", type=float,
                       default=net.detect_every_s * 1e3,
                       help="failure-detector evaluation period")
    group.add_argument("--net-phi", type=float, default=net.phi_threshold,
                       help="suspicion threshold in heartbeat intervals")
    group.add_argument("--partition", action="append", default=[],
                       metavar="SHARDS@T1:T2",
                       help="cut shards off the router for [T1,T2) "
                       "(e.g. 1,2@0.2:0.35; repeatable)")
    group.add_argument("--gray-shard", action="append", default=[],
                       metavar="ID@T1:T2",
                       help="gray failure: shard alive but slow for "
                       "[T1,T2) (repeatable)")
    group.add_argument("--gray-factor", type=float, default=25.0,
                       help="delay multiplier of gray-slow windows")
    group.add_argument("--net-on-exhaust", choices=("degrade", "drop"),
                       default=net.on_exhaust,
                       help="what the router does with a frame whose "
                       "retransmits are exhausted")
    parser.add_argument("--compare-no-kill", action="store_true",
                        help="also run the same fleet without the chaos "
                        "schedule and print both reports")
    parser.add_argument("--compare-no-fault", action="store_true",
                        help="also run the same fleet over a CLEAN network "
                        "(transport protocol on, faults and kills off) and "
                        "print both reports")
    parser.add_argument("--max-session-rows", type=int, default=8)
    add_checkpoint_arguments(parser)
    add_obs_arguments(parser)
    add_slo_arguments(parser)
    return parser


def fleet_config_from_args(args: argparse.Namespace) -> FleetConfig:
    serve = ServeConfig(
        n_sessions=args.sessions,
        duration_s=args.duration,
        fps=args.fps,
        n_workers=args.workers,
        max_batch=args.max_batch,
        queue_budget_deadlines=args.queue_budget,
        reuse_displacement_deg=args.reuse_displacement,
        seed=args.seed,
    )
    kills = tuple(
        ShardKill(shard_id=sid, at_s=at_s)
        for sid, at_s in (
            _parse_at(spec, "--kill-shard") for spec in args.kill_shard
        )
    )
    migrations = tuple(
        SessionMigration(at_s=at_s, session_id=sid)
        for sid, at_s in (
            _parse_at(spec, "--migrate") for spec in args.migrate
        )
    )
    partitions = tuple(_parse_partition(spec) for spec in args.partition)
    gray = tuple(
        _parse_gray(spec, args.gray_factor) for spec in args.gray_shard
    )
    net_enabled = args.net or bool(partitions) or bool(gray)
    net = NetConfig(
        enabled=net_enabled,
        seed=args.net_seed,
        link=LinkProfile(
            drop_rate=args.net_drop,
            dup_rate=args.net_dup,
            delay_s=args.net_delay_ms * 1e-3,
            jitter_s=args.net_jitter_ms * 1e-3,
        ),
        partitions=partitions,
        gray=gray,
        ack_timeout_s=args.net_ack_timeout_ms * 1e-3,
        backoff_factor=args.net_backoff,
        max_retransmits=args.net_max_retransmits,
        heartbeat_s=args.net_heartbeat_ms * 1e-3,
        detect_every_s=args.net_detect_ms * 1e-3,
        phi_threshold=args.net_phi,
        on_exhaust=args.net_on_exhaust,
    )
    return FleetConfig(
        serve=serve,
        n_shards=args.shards,
        vnodes=args.vnodes,
        ring_seed=args.ring_seed,
        kills=kills,
        migrations=migrations,
        migration_rate_hz=args.migration_rate,
        migration_seed=args.migration_seed,
        failover=FailoverConfig(guard_s=args.guard),
        rebalancer=RebalancerConfig(
            interval_s=args.rebalance_interval,
            p95_high_s=args.rebalance_high_ms * 1e-3,
            p95_low_s=args.rebalance_low_ms * 1e-3,
        ),
        net=net,
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = fleet_config_from_args(args)
    except ValueError as err:
        parser.error(str(err))
    if args.compare_no_fault and not config.net.enabled:
        parser.error("--compare-no-fault requires the net transport "
                     "(--net, --partition, or --gray-shard)")
    if args.kill_at_event is not None and args.checkpoint_dir is None:
        parser.error("--kill-at-event requires --checkpoint-dir")
    if args.slo is not None and args.checkpoint_dir is not None:
        parser.error("--slo and --checkpoint-dir are mutually exclusive "
                     "(the SLO engine is not checkpointed)")
    obs = obs_from_args(args)
    slo_engine = None
    if args.slo is not None:
        from repro.obs.config import Obs, ObsConfig
        from repro.obs.slo import SloConfigError, SloEngine, resolve_slo_config

        if obs is None:
            obs = Obs(ObsConfig(top_k=args.obs_top))
        try:
            slo_config = resolve_slo_config(args.slo, config.serve.deadline_s)
        except SloConfigError as err:
            parser.error(str(err))
        slo_engine = SloEngine(slo_config, obs)
    if args.checkpoint_dir is not None:
        runtime = FleetRuntime(config, obs=obs)
        report = run_checkpointed_cli(runtime, args, parser)
        if not isinstance(report, FleetReport):
            return report  # simulated crash exit code
    else:
        runtime = FleetRuntime(config, obs=obs)
        if slo_engine is not None:
            runtime.attach_slo(slo_engine)
        report = runtime.run()
    print(format_fleet_report(report, max_session_rows=args.max_session_rows))
    if slo_engine is not None:
        from repro.obs.slo import evaluate_summary, format_summary_verdicts
        from repro.serve.telemetry import fleet_summary_metrics

        print("\n--- SLO verdicts ---\n")
        print(slo_engine.format_verdicts())
        summary_objectives = slo_engine.config.summary_objectives
        if summary_objectives:
            rows = evaluate_summary(
                summary_objectives, fleet_summary_metrics(report)
            )
            print()
            print(format_summary_verdicts(rows))
    if args.obs:
        from repro.recover.configio import (
            fleet_config_to_dict,
            service_model_to_dict,
        )

        resolved = {
            "kind": "fleet",
            "config": fleet_config_to_dict(config),
            "service": service_model_to_dict(BatchServiceModel()),
        }
        out_dir = resolve_obs_out(args.obs_out, "fleet", resolved)
        emit_obs_artifacts(obs, out_dir, top_k=args.obs_top)
        if slo_engine is not None:
            emit_slo_artifacts(slo_engine, out_dir)
    if args.compare_no_kill:
        from dataclasses import replace

        baseline = run_fleet(replace(config, kills=()))
        print("\n--- no-kill baseline (same fleet, no chaos schedule) ---\n")
        print(
            format_fleet_report(
                baseline, max_session_rows=args.max_session_rows
            )
        )
        print(
            f"\nFailover cost: goodput {report.predict_goodput_fps:.0f} vs "
            f"{baseline.predict_goodput_fps:.0f} fresh predictions/s, "
            f"{report.lost_shard_frames} frames lost with killed shards "
            f"(baseline {baseline.lost_shard_frames})"
        )
    if args.compare_no_fault:
        from dataclasses import replace

        clean_net = replace(
            config.net,
            link=LinkProfile(delay_s=config.net.link.delay_s),
            partitions=(),
            gray=(),
        )
        baseline = run_fleet(replace(config, kills=(), net=clean_net))
        print("\n--- clean-network baseline (same fleet + protocol, "
              "no faults) ---\n")
        print(
            format_fleet_report(
                baseline, max_session_rows=args.max_session_rows
            )
        )
        faulted = report.net.counters
        clean = baseline.net.counters
        print(
            f"\nFault cost: goodput {report.predict_goodput_fps:.0f} vs "
            f"{baseline.predict_goodput_fps:.0f} fresh predictions/s | "
            f"retransmits {faulted['retransmits']} vs "
            f"{clean['retransmits']} | degraded+lost "
            f"{faulted['exhausted_degraded'] + faulted['exhausted_lost']} "
            f"vs {clean['exhausted_degraded'] + clean['exhausted_lost']} | "
            f"{report.lost_shard_frames} frames died with killed shards "
            f"(baseline {baseline.lost_shard_frames})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
