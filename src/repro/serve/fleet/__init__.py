"""Sharded serving fleet: consistent-hash routing, live session
migration, and shard failover under chaos.

The package scales the single :class:`~repro.serve.runtime.ServeRuntime`
event loop out to N shards behind a seeded consistent-hash ring while
keeping the repo's two core guarantees intact:

* **determinism** — one merged global event order (control events, then
  shards by id) makes two same-config runs byte-identical, and the full
  ``repro.recover`` checkpoint/journal protocol applies to the whole
  fleet (``RUNTIME_KIND = "fleet"``).
* **conservation** — every generated frame ends in exactly one ledger
  bucket fleet-wide; a shard kill loses *only* the frames physically on
  the shard at the kill instant (queued or in flight), recorded
  ``lost_shard``, never silently.
"""

from repro.faults.injectors import ShardKill
from repro.faults.netfaults import GraySlow, LinkProfile, PartitionWindow
from repro.serve.fleet.config import (
    FailoverConfig,
    FleetConfig,
    RebalancerConfig,
    SessionMigration,
    planned_migrations,
    rebalance_ticks,
)
from repro.serve.fleet.report import FleetLog, FleetSection, NetSection
from repro.serve.fleet.ring import HashRing
from repro.serve.fleet.runtime import FleetRuntime, run_fleet
from repro.serve.fleet.shard import MigrationPayload, ShardRuntime
from repro.serve.fleet.transport import FleetTransport, NetConfig

__all__ = [
    "FailoverConfig",
    "FleetConfig",
    "FleetLog",
    "FleetRuntime",
    "FleetSection",
    "FleetTransport",
    "GraySlow",
    "HashRing",
    "LinkProfile",
    "MigrationPayload",
    "NetConfig",
    "NetSection",
    "PartitionWindow",
    "RebalancerConfig",
    "SessionMigration",
    "ShardKill",
    "ShardRuntime",
    "planned_migrations",
    "rebalance_ticks",
    "run_fleet",
]
