"""Seeded consistent-hash ring for session -> shard routing.

The ring is the fleet's only placement authority: initial session
assignment, failover re-homing, and rebalancer targeting all ask it the
same question ("which alive shard owns this session?") and get the same
deterministic answer.  Classic consistent hashing with virtual nodes:
every shard contributes ``vnodes`` points on a 64-bit ring (SHA-256 of
``"<seed>:shard:<id>:<replica>"``), a session hashes to one point
(``"<seed>:session:<id>"``), and routing walks clockwise to the first
shard point.

Properties the fleet leans on:

* **stability** — removing a shard only remaps the sessions that hashed
  to its arcs; everyone else keeps their placement (bounded failover
  churn).
* **determinism** — SHA-256 of seeded strings, no process-dependent
  ``hash()``; two fleets with the same seed and member set route
  identically, which is what makes fleet reports byte-diffable.
"""

from __future__ import annotations

import bisect
import hashlib

#: Ring positions are the top 64 bits of a SHA-256 digest.
_RING_BITS = 64


def _digest64(key: str) -> int:
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring over shard ids with virtual nodes."""

    def __init__(self, vnodes: int = 64, seed: int = 0):
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        #: Sorted parallel arrays: ring position -> owning shard.
        self._points: list[int] = []
        self._owners: list[int] = []
        self._nodes: set[int] = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _shard_points(self, shard_id: int) -> list[int]:
        return [
            _digest64(f"{self.seed}:shard:{shard_id}:{replica}")
            for replica in range(self.vnodes)
        ]

    def add(self, shard_id: int) -> None:
        """Join one shard (its virtual nodes enter the ring)."""
        shard_id = int(shard_id)
        if shard_id in self._nodes:
            raise ValueError(f"shard {shard_id} is already on the ring")
        self._nodes.add(shard_id)
        for point in self._shard_points(shard_id):
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove(self, shard_id: int) -> None:
        """Leave the ring (failover / drain); other arcs are untouched."""
        shard_id = int(shard_id)
        if shard_id not in self._nodes:
            raise ValueError(f"shard {shard_id} is not on the ring")
        self._nodes.discard(shard_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    @property
    def nodes(self) -> list[int]:
        """Alive shard ids, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, shard_id: int) -> bool:
        return int(shard_id) in self._nodes

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, session_id: int, avoid: "int | None" = None) -> int:
        """Owning shard of ``session_id`` (clockwise walk from its hash).

        ``avoid`` skips one shard's arcs — used when migrating a session
        *off* a shard that is still alive: the session lands where the
        ring would place it if that shard were gone, so a later real
        removal does not move it again.
        """
        if not self._nodes:
            raise RuntimeError("ring has no alive shards to route to")
        if avoid is not None and self._nodes == {int(avoid)}:
            raise RuntimeError(
                f"cannot route around shard {avoid}: it is the only shard"
            )
        point = _digest64(f"{self.seed}:session:{int(session_id)}")
        start = bisect.bisect_right(self._points, point)
        n = len(self._points)
        for offset in range(n):
            owner = self._owners[(start + offset) % n]
            if avoid is None or owner != int(avoid):
                return owner
        raise RuntimeError("ring walk found no eligible shard")  # pragma: no cover

    def assignment(self, session_ids: "list[int]") -> dict[int, list[int]]:
        """Route many sessions at once: shard id -> sorted session ids.

        Every alive shard appears in the result, hosting ``[]`` when no
        session hashed to its arcs.
        """
        placement: dict[int, list[int]] = {shard: [] for shard in self.nodes}
        for session_id in sorted(int(s) for s in session_ids):
            placement[self.route(session_id)].append(session_id)
        return placement

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"vnodes": self.vnodes, "seed": self.seed, "nodes": self.nodes}

    @classmethod
    def from_state(cls, state: dict) -> "HashRing":
        ring = cls(vnodes=int(state["vnodes"]), seed=int(state["seed"]))
        for shard_id in state["nodes"]:
            ring.add(int(shard_id))
        return ring
