"""Configuration of one sharded fleet simulation.

A :class:`FleetConfig` wraps the single-runtime :class:`ServeConfig` as
a *template*: ``serve.n_sessions`` is the **fleet-total** session count
(sessions are placed on shards by the consistent-hash ring), while the
worker-pool and batching knobs (``n_workers``, ``max_batch``, ...) apply
**per shard** — four shards of two workers serve with eight workers
total.  On top of the template sit the fleet-only knobs:

* **topology** — initial shard count and the ring's virtual-node count
  and seed;
* **chaos** — a :class:`~repro.faults.injectors.ShardKill` schedule
  (whole-shard failures with bounded frame loss) and a live-migration
  plan (explicit :class:`SessionMigration` entries plus a seeded
  Poisson-ish rate);
* **failover policy** — the circuit breaker guarding re-admission of
  re-homed sessions;
* **rebalancer** — the hysteretic P95-queue-wait autoscaler
  (shard spawn / drain), disabled by default;
* **net** — the simulated lossy router<->shard transport
  (:class:`~repro.serve.fleet.transport.NetConfig`): seeded drop /
  duplicate / delay distributions, partition and gray-slow windows,
  ack/retransmit protocol knobs, and the heartbeat failure detector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.faults.injectors import ShardKill
from repro.serve.config import ServeConfig
from repro.serve.fleet.transport import NetConfig
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SessionMigration:
    """One planned live migration: move ``session_id`` at ``at_s``.

    ``to_shard=None`` lets the ring choose (the session lands where it
    would live if its current shard left the ring); an explicit target
    pins the destination.
    """

    at_s: float
    session_id: int
    to_shard: "int | None" = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"at_s must be non-negative, got {self.at_s}")
        if self.session_id < 0:
            raise ValueError(
                f"session_id must be non-negative, got {self.session_id}"
            )


@dataclass(frozen=True)
class FailoverConfig:
    """Circuit breaker guarding re-admission of re-homed sessions.

    For ``guard_s`` after a session re-homes, its predict frames pass
    through a per-shard breaker: ``breaker_threshold`` consecutive
    admission rejections open it, and while open every guarded frame is
    degraded to the buffered gaze immediately — a dead shard's refugees
    must not stampede a surviving shard's queue.  After
    ``breaker_cooldown_s`` one probe frame tests the queue again.
    """

    breaker_threshold: int = 4
    breaker_cooldown_s: float = 0.05
    guard_s: float = 0.25

    def __post_init__(self) -> None:
        check_positive("breaker_threshold", self.breaker_threshold)
        check_positive("breaker_cooldown_s", self.breaker_cooldown_s)
        check_positive("guard_s", self.guard_s, strict=False)


@dataclass(frozen=True)
class RebalancerConfig:
    """Hysteretic queue-wait autoscaler (``interval_s=0`` disables it).

    Every ``interval_s`` the fleet reads each shard's windowed P95
    batcher wait.  A shard above ``p95_high_s`` is *hot*: the rebalancer
    spawns a fresh shard (up to ``max_shards``) and drains
    ``sessions_per_move`` sessions onto it via live migration.  When
    every shard sits below ``p95_low_s`` (the hysteresis band) and a
    spawned shard exists beyond ``min_shards``, the emptiest spawned
    shard is drained back and retired.  ``cooldown_s`` spaces actions so
    a borderline fleet does not flap.
    """

    interval_s: float = 0.0
    p95_high_s: float = 8.0e-3
    p95_low_s: float = 2.0e-3
    cooldown_s: float = 0.2
    sessions_per_move: int = 4
    min_shards: int = 1
    max_shards: int = 16

    def __post_init__(self) -> None:
        check_positive("interval_s", self.interval_s, strict=False)
        check_positive("p95_high_s", self.p95_high_s)
        check_positive("p95_low_s", self.p95_low_s)
        check_positive("cooldown_s", self.cooldown_s, strict=False)
        check_positive("sessions_per_move", self.sessions_per_move)
        check_positive("min_shards", self.min_shards)
        check_positive("max_shards", self.max_shards)
        if self.p95_low_s >= self.p95_high_s:
            raise ValueError(
                f"hysteresis band requires p95_low_s < p95_high_s, got "
                f"{self.p95_low_s} >= {self.p95_high_s}"
            )
        if self.min_shards > self.max_shards:
            raise ValueError(
                f"min_shards {self.min_shards} > max_shards {self.max_shards}"
            )

    @property
    def enabled(self) -> bool:
        return self.interval_s > 0


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of one sharded fleet simulation."""

    serve: ServeConfig = field(default_factory=ServeConfig)
    n_shards: int = 4
    vnodes: int = 64
    ring_seed: int = 0
    kills: tuple[ShardKill, ...] = ()
    migrations: tuple[SessionMigration, ...] = ()
    migration_rate_hz: float = 0.0
    migration_seed: int = 0
    failover: FailoverConfig = field(default_factory=FailoverConfig)
    rebalancer: RebalancerConfig = field(default_factory=RebalancerConfig)
    net: NetConfig = field(default_factory=NetConfig)

    def __post_init__(self) -> None:
        check_positive("n_shards", self.n_shards)
        check_positive("vnodes", self.vnodes)
        check_positive("migration_rate_hz", self.migration_rate_hz, strict=False)
        killed = [k.shard_id for k in self.kills]
        if len(set(killed)) != len(killed):
            raise ValueError(f"duplicate shard ids in kill schedule: {killed}")
        for kill in self.kills:
            if kill.shard_id >= self.n_shards:
                raise ValueError(
                    f"kill targets shard {kill.shard_id} but the fleet "
                    f"starts with {self.n_shards} shards"
                )
        if len(self.kills) >= self.n_shards:
            raise ValueError(
                f"kill schedule ({len(self.kills)} kills) would leave no "
                f"initial shard alive out of {self.n_shards}"
            )
        for migration in self.migrations:
            if migration.session_id >= self.serve.n_sessions:
                raise ValueError(
                    f"migration targets session {migration.session_id} but "
                    f"the fleet has {self.serve.n_sessions} sessions"
                )
        if self.net.enabled:
            if self.rebalancer.enabled:
                raise ValueError(
                    "the net transport does not compose with the "
                    "rebalancer: heartbeats are scheduled for the initial "
                    "topology only, so a spawned shard would be suspected "
                    "instantly"
                )
            if self.migrations or self.migration_rate_hz > 0:
                raise ValueError(
                    "the net transport does not compose with live "
                    "migration: under --net, session movement is driven "
                    "exclusively by the failure detector (suspect re-home "
                    "and heal bounce-back)"
                )
            for window in self.net.partitions:
                for shard_id in window.shard_ids:
                    if shard_id >= self.n_shards:
                        raise ValueError(
                            f"partition window names shard {shard_id} but "
                            f"the fleet starts with {self.n_shards} shards"
                        )
            for window in self.net.gray:
                if window.shard_id >= self.n_shards:
                    raise ValueError(
                        f"gray-slow window names shard {window.shard_id} "
                        f"but the fleet starts with {self.n_shards} shards"
                    )

    @property
    def n_sessions(self) -> int:
        """Fleet-total session count (the template's ``n_sessions``)."""
        return self.serve.n_sessions


def planned_migrations(config: FleetConfig) -> list[SessionMigration]:
    """The complete, deterministic migration plan of one run.

    Explicit entries plus ``migration_rate_hz`` stochastic ones: the
    rate draws ``round(rate * duration)`` migration instants uniformly
    over the run and ring-routed victim sessions, all from one
    generator seeded by ``migration_seed`` — the same config always
    yields the same plan.  Sorted by (time, session) so the fleet's
    control events enqueue in one canonical order.
    """
    plan = list(config.migrations)
    n_random = int(round(config.migration_rate_hz * config.serve.duration_s))
    if n_random > 0:
        rng = np.random.default_rng(config.migration_seed * 9176 + 1)
        times = np.sort(rng.uniform(0.0, config.serve.duration_s, size=n_random))
        victims = rng.integers(0, config.serve.n_sessions, size=n_random)
        plan.extend(
            SessionMigration(at_s=float(t), session_id=int(s))
            for t, s in zip(times, victims)
        )
    plan.sort(key=lambda m: (m.at_s, m.session_id))
    return plan


def rebalance_ticks(config: FleetConfig) -> list[float]:
    """Rebalancer evaluation instants (empty when disabled)."""
    rebalancer = config.rebalancer
    if not rebalancer.enabled:
        return []
    n_ticks = int(math.floor(config.serve.duration_s / rebalancer.interval_s))
    return [rebalancer.interval_s * (i + 1) for i in range(n_ticks)]
