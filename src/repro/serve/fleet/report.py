"""Fleet-level telemetry: the event log and the report's shard section.

The :class:`FleetLog` accumulates what the fleet controller *did*
(failovers, migrations, rebalance actions) as the run executes; at
``finish()`` it is frozen, together with per-shard rows, into a
:class:`FleetSection` attached to the ordinary
:class:`~repro.serve.telemetry.FleetReport`.  The section is duck-typed
(``state_dict()`` / ``format()`` / ``summary()``) so the single-runtime
telemetry module renders and serializes it without importing this
package.  Net-transport runs additionally freeze the
:class:`~repro.serve.fleet.transport.FleetTransport`'s protocol counters
and detector transitions into a :class:`NetSection` with the same
duck-typed surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.system.metrics import table_to_text


@dataclass
class FleetLog:
    """Mutable control-plane event log of one fleet run."""

    #: ``{"at_s", "shard_id", "rehomed_sessions", "lost_frames"}``
    failovers: list[dict] = field(default_factory=list)
    #: ``{"at_s", "session_id", "from", "to", "moved_frames", "reason"}``
    migrations: list[dict] = field(default_factory=list)
    migrations_planned: int = 0
    migrations_skipped: int = 0
    rebalance_spawns: int = 0
    rebalance_drains: int = 0

    def record_failover(
        self, at_s: float, shard_id: int, rehomed: int, lost: int
    ) -> None:
        self.failovers.append(
            {
                "at_s": at_s,
                "shard_id": shard_id,
                "rehomed_sessions": rehomed,
                "lost_frames": lost,
            }
        )

    def record_migration(
        self,
        at_s: float,
        session_id: int,
        source: int,
        target: int,
        moved_frames: int,
        reason: str = "plan",
    ) -> None:
        self.migrations.append(
            {
                "at_s": at_s,
                "session_id": session_id,
                "from": source,
                "to": target,
                "moved_frames": moved_frames,
                "reason": reason,
            }
        )

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "failovers": [dict(f) for f in self.failovers],
            "migrations": [dict(m) for m in self.migrations],
            "migrations_planned": self.migrations_planned,
            "migrations_skipped": self.migrations_skipped,
            "rebalance_spawns": self.rebalance_spawns,
            "rebalance_drains": self.rebalance_drains,
        }

    def load_state(self, state: dict) -> None:
        self.failovers = [dict(f) for f in state["failovers"]]
        self.migrations = [dict(m) for m in state["migrations"]]
        self.migrations_planned = int(state["migrations_planned"])
        self.migrations_skipped = int(state["migrations_skipped"])
        self.rebalance_spawns = int(state["rebalance_spawns"])
        self.rebalance_drains = int(state["rebalance_drains"])


@dataclass
class FleetSection:
    """Frozen shard section of a fleet run's report.

    ``shard_rows`` carries one dict per shard (id order): id, status
    (``alive`` / ``killed`` / ``retired``), lifecycle instants, final
    session count, frames completed/degraded *on that shard*, frames
    lost with it, migration/re-homing traffic, and utilization.
    """

    vnodes: int
    shards_started: int
    shard_rows: list[dict]
    log: FleetLog
    rehome_breaker_degraded: int = 0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def shards_killed(self) -> int:
        return sum(1 for row in self.shard_rows if row["status"] == "killed")

    @property
    def shards_spawned(self) -> int:
        return sum(
            1 for row in self.shard_rows if row["spawned_at_s"] is not None
        )

    @property
    def shards_drained(self) -> int:
        return sum(1 for row in self.shard_rows if row["status"] == "retired")

    @property
    def shards_serving(self) -> int:
        return sum(1 for row in self.shard_rows if row["status"] == "alive")

    @property
    def rehomed_sessions(self) -> int:
        return sum(f["rehomed_sessions"] for f in self.log.failovers)

    @property
    def failover_lost_frames(self) -> int:
        return sum(f["lost_frames"] for f in self.log.failovers)

    def summary(self) -> dict[str, float]:
        """Flat metrics merged into ``fleet_summary_metrics`` — the names
        ``repro.exp`` ledgers and summary SLOs read."""
        return {
            "shards_started": float(self.shards_started),
            "shards_spawned": float(self.shards_spawned),
            "shards_killed": float(self.shards_killed),
            "shards_drained": float(self.shards_drained),
            "shards_serving": float(self.shards_serving),
            "rehomed_sessions": float(self.rehomed_sessions),
            "failover_lost_frames": float(self.failover_lost_frames),
            "migrations_planned": float(self.log.migrations_planned),
            "migrations_completed": float(len(self.log.migrations)),
            "migrations_skipped": float(self.log.migrations_skipped),
            "rehome_breaker_degraded": float(self.rehome_breaker_degraded),
            "rebalance_spawns": float(self.log.rebalance_spawns),
            "rebalance_drains": float(self.log.rebalance_drains),
        }

    # ------------------------------------------------------------------
    # Snapshot protocol (the byte-diff oracle includes the section)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "vnodes": self.vnodes,
            "shards_started": self.shards_started,
            "shard_rows": [dict(row) for row in self.shard_rows],
            "log": self.log.state_dict(),
            "rehome_breaker_degraded": self.rehome_breaker_degraded,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FleetSection":
        log = FleetLog()
        log.load_state(state["log"])
        return cls(
            vnodes=int(state["vnodes"]),
            shards_started=int(state["shards_started"]),
            shard_rows=[dict(row) for row in state["shard_rows"]],
            log=log,
            rehome_breaker_degraded=int(state["rehome_breaker_degraded"]),
        )

    # ------------------------------------------------------------------
    # Rendering (embedded in format_fleet_report)
    # ------------------------------------------------------------------
    def format(self) -> str:
        lines = [
            f"Fleet topology: {self.shards_started} shards started "
            f"(+{self.shards_spawned} spawned, {self.shards_killed} killed, "
            f"{self.shards_drained} drained) -> {self.shards_serving} serving "
            f"| ring: {self.vnodes} vnodes/shard"
        ]
        if self.log.failovers:
            for event in self.log.failovers:
                lines.append(
                    f"Failover: shard {event['shard_id']} killed at "
                    f"{event['at_s']:.3f}s -> "
                    f"{event['rehomed_sessions']} sessions re-homed, "
                    f"{event['lost_frames']} in-flight frames lost"
                )
        else:
            lines.append("Failover: none")
        lines.append(
            f"Migrations: {len(self.log.migrations)} completed of "
            f"{self.log.migrations_planned} planned "
            f"({self.log.migrations_skipped} skipped) | re-home breaker "
            f"degraded {self.rehome_breaker_degraded} frames"
        )
        if self.log.rebalance_spawns or self.log.rebalance_drains:
            lines.append(
                f"Rebalancer: {self.log.rebalance_spawns} spawns, "
                f"{self.log.rebalance_drains} drains"
            )
        headers = [
            "Shard", "Status", "Sessions", "Done", "Degr",
            "Lost", "In", "Out", "Rehomed", "Util",
        ]
        rows = []
        for row in self.shard_rows:
            rows.append(
                [
                    row["shard_id"],
                    row["status"],
                    row["sessions"],
                    row["completed"],
                    row["degraded"],
                    row["lost_frames"],
                    row["migrations_in"],
                    row["migrations_out"],
                    row["rehomed_in"],
                    f"{row['utilization']:.0%}",
                ]
            )
        return "\n".join(lines) + "\n" + table_to_text(headers, rows, min_width=6)


@dataclass
class NetSection:
    """Frozen transport/detector section of a net-mode fleet report.

    ``counters`` is the transport's full counter dict (see
    ``repro.serve.fleet.transport.COUNTER_NAMES``); ``transitions`` the
    detector's suspect/heal timeline; ``detect_latencies`` the
    kill-to-suspicion delays of real failovers.
    """

    drop_rate: float
    dup_rate: float
    delay_s: float
    jitter_s: float
    n_partitions: int
    n_gray: int
    on_exhaust: str
    counters: dict[str, int]
    transitions: list[dict] = field(default_factory=list)
    detect_latencies: list[float] = field(default_factory=list)

    @classmethod
    def from_transport(cls, config, transport) -> "NetSection":
        return cls(
            drop_rate=config.link.drop_rate,
            dup_rate=config.link.dup_rate,
            delay_s=config.link.delay_s,
            jitter_s=config.link.jitter_s,
            n_partitions=len(config.partitions),
            n_gray=len(config.gray),
            on_exhaust=config.on_exhaust,
            counters=dict(transport.counters),
            transitions=[dict(t) for t in transport.transitions],
            detect_latencies=list(transport.detect_latencies),
        )

    def summary(self) -> dict[str, float]:
        """Flat metrics merged into ``fleet_summary_metrics`` under the
        ``net_`` prefix — what exp ledgers and the bench gate read."""
        c = self.counters
        return {
            "retransmits_total": float(c["retransmits"]),
            "frames_deduped_total": float(c["frames_deduped"]),
            "failover_detect_s": (
                max(self.detect_latencies) if self.detect_latencies else 0.0
            ),
            "heal_bounce_sessions": float(c["heal_bounce_sessions"]),
            "suspected_total": float(c["suspected"]),
            "false_suspects": float(c["false_suspects"]),
            "heals_total": float(c["heals"]),
            "exhausted_degraded": float(c["exhausted_degraded"]),
            "exhausted_lost": float(c["exhausted_lost"]),
            "late_discards": float(c["late_discards"]),
            "dead_letters": float(c["dead_letters"]),
            "net_messages_total": float(
                c["data_sent"] + c["acks_sent"] + c["heartbeats_sent"]
            ),
        }

    # ------------------------------------------------------------------
    # Snapshot protocol (the byte-diff oracle includes the section)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "drop_rate": self.drop_rate,
            "dup_rate": self.dup_rate,
            "delay_s": self.delay_s,
            "jitter_s": self.jitter_s,
            "n_partitions": self.n_partitions,
            "n_gray": self.n_gray,
            "on_exhaust": self.on_exhaust,
            "counters": dict(self.counters),
            "transitions": [dict(t) for t in self.transitions],
            "detect_latencies": list(self.detect_latencies),
        }

    @classmethod
    def from_state(cls, state: dict) -> "NetSection":
        return cls(
            drop_rate=float(state["drop_rate"]),
            dup_rate=float(state["dup_rate"]),
            delay_s=float(state["delay_s"]),
            jitter_s=float(state["jitter_s"]),
            n_partitions=int(state["n_partitions"]),
            n_gray=int(state["n_gray"]),
            on_exhaust=str(state["on_exhaust"]),
            counters={str(k): int(v) for k, v in state["counters"].items()},
            transitions=[dict(t) for t in state["transitions"]],
            detect_latencies=[float(x) for x in state["detect_latencies"]],
        )

    # ------------------------------------------------------------------
    # Rendering (embedded in format_fleet_report)
    # ------------------------------------------------------------------
    def format(self) -> str:
        c = self.counters
        lines = [
            f"Transport: {c['data_sent']} data msgs "
            f"({c['retransmits']} retransmits, "
            f"{c['dup_injected']} dup-injected), "
            f"{c['acks_sent']} acks, {c['heartbeats_sent']} heartbeats "
            f"| dropped {c['data_dropped']}+{c['acks_dropped']}"
            f"+{c['heartbeats_dropped']}",
            f"Exactly-once: {c['frames_applied']} applied, "
            f"{c['frames_deduped']} duplicates deduped, "
            f"{c['dead_letters']} dead-lettered, "
            f"{c['late_discards']} late copies discarded",
            f"Exhaustion: {c['exhausted_degraded']} degraded after retries, "
            f"{c['exhausted_lost']} lost (policy {self.on_exhaust})",
        ]
        detector = (
            f"Detector: {c['suspected']} suspected "
            f"({c['false_suspects']} false), {c['heals']} healed, "
            f"{c['heal_bounce_sessions']} sessions bounced back"
        )
        if self.detect_latencies:
            detector += (
                f" | failover detected in {max(self.detect_latencies):.3f}s"
            )
        lines.append(detector)
        if self.n_partitions or self.n_gray:
            lines.append(
                f"Partitions: {self.n_partitions} windows | "
                f"gray-slow: {self.n_gray}"
            )
        return "\n".join(lines)
