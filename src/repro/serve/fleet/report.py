"""Fleet-level telemetry: the event log and the report's shard section.

The :class:`FleetLog` accumulates what the fleet controller *did*
(failovers, migrations, rebalance actions) as the run executes; at
``finish()`` it is frozen, together with per-shard rows, into a
:class:`FleetSection` attached to the ordinary
:class:`~repro.serve.telemetry.FleetReport`.  The section is duck-typed
(``state_dict()`` / ``format()`` / ``summary()``) so the single-runtime
telemetry module renders and serializes it without importing this
package.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.system.metrics import table_to_text


@dataclass
class FleetLog:
    """Mutable control-plane event log of one fleet run."""

    #: ``{"at_s", "shard_id", "rehomed_sessions", "lost_frames"}``
    failovers: list[dict] = field(default_factory=list)
    #: ``{"at_s", "session_id", "from", "to", "moved_frames", "reason"}``
    migrations: list[dict] = field(default_factory=list)
    migrations_planned: int = 0
    migrations_skipped: int = 0
    rebalance_spawns: int = 0
    rebalance_drains: int = 0

    def record_failover(
        self, at_s: float, shard_id: int, rehomed: int, lost: int
    ) -> None:
        self.failovers.append(
            {
                "at_s": at_s,
                "shard_id": shard_id,
                "rehomed_sessions": rehomed,
                "lost_frames": lost,
            }
        )

    def record_migration(
        self,
        at_s: float,
        session_id: int,
        source: int,
        target: int,
        moved_frames: int,
        reason: str = "plan",
    ) -> None:
        self.migrations.append(
            {
                "at_s": at_s,
                "session_id": session_id,
                "from": source,
                "to": target,
                "moved_frames": moved_frames,
                "reason": reason,
            }
        )

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "failovers": [dict(f) for f in self.failovers],
            "migrations": [dict(m) for m in self.migrations],
            "migrations_planned": self.migrations_planned,
            "migrations_skipped": self.migrations_skipped,
            "rebalance_spawns": self.rebalance_spawns,
            "rebalance_drains": self.rebalance_drains,
        }

    def load_state(self, state: dict) -> None:
        self.failovers = [dict(f) for f in state["failovers"]]
        self.migrations = [dict(m) for m in state["migrations"]]
        self.migrations_planned = int(state["migrations_planned"])
        self.migrations_skipped = int(state["migrations_skipped"])
        self.rebalance_spawns = int(state["rebalance_spawns"])
        self.rebalance_drains = int(state["rebalance_drains"])


@dataclass
class FleetSection:
    """Frozen shard section of a fleet run's report.

    ``shard_rows`` carries one dict per shard (id order): id, status
    (``alive`` / ``killed`` / ``retired``), lifecycle instants, final
    session count, frames completed/degraded *on that shard*, frames
    lost with it, migration/re-homing traffic, and utilization.
    """

    vnodes: int
    shards_started: int
    shard_rows: list[dict]
    log: FleetLog
    rehome_breaker_degraded: int = 0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def shards_killed(self) -> int:
        return sum(1 for row in self.shard_rows if row["status"] == "killed")

    @property
    def shards_spawned(self) -> int:
        return sum(
            1 for row in self.shard_rows if row["spawned_at_s"] is not None
        )

    @property
    def shards_drained(self) -> int:
        return sum(1 for row in self.shard_rows if row["status"] == "retired")

    @property
    def shards_serving(self) -> int:
        return sum(1 for row in self.shard_rows if row["status"] == "alive")

    @property
    def rehomed_sessions(self) -> int:
        return sum(f["rehomed_sessions"] for f in self.log.failovers)

    @property
    def failover_lost_frames(self) -> int:
        return sum(f["lost_frames"] for f in self.log.failovers)

    def summary(self) -> dict[str, float]:
        """Flat metrics merged into ``fleet_summary_metrics`` — the names
        ``repro.exp`` ledgers and summary SLOs read."""
        return {
            "shards_started": float(self.shards_started),
            "shards_spawned": float(self.shards_spawned),
            "shards_killed": float(self.shards_killed),
            "shards_drained": float(self.shards_drained),
            "shards_serving": float(self.shards_serving),
            "rehomed_sessions": float(self.rehomed_sessions),
            "failover_lost_frames": float(self.failover_lost_frames),
            "migrations_planned": float(self.log.migrations_planned),
            "migrations_completed": float(len(self.log.migrations)),
            "migrations_skipped": float(self.log.migrations_skipped),
            "rehome_breaker_degraded": float(self.rehome_breaker_degraded),
            "rebalance_spawns": float(self.log.rebalance_spawns),
            "rebalance_drains": float(self.log.rebalance_drains),
        }

    # ------------------------------------------------------------------
    # Snapshot protocol (the byte-diff oracle includes the section)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "vnodes": self.vnodes,
            "shards_started": self.shards_started,
            "shard_rows": [dict(row) for row in self.shard_rows],
            "log": self.log.state_dict(),
            "rehome_breaker_degraded": self.rehome_breaker_degraded,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FleetSection":
        log = FleetLog()
        log.load_state(state["log"])
        return cls(
            vnodes=int(state["vnodes"]),
            shards_started=int(state["shards_started"]),
            shard_rows=[dict(row) for row in state["shard_rows"]],
            log=log,
            rehome_breaker_degraded=int(state["rehome_breaker_degraded"]),
        )

    # ------------------------------------------------------------------
    # Rendering (embedded in format_fleet_report)
    # ------------------------------------------------------------------
    def format(self) -> str:
        lines = [
            f"Fleet topology: {self.shards_started} shards started "
            f"(+{self.shards_spawned} spawned, {self.shards_killed} killed, "
            f"{self.shards_drained} drained) -> {self.shards_serving} serving "
            f"| ring: {self.vnodes} vnodes/shard"
        ]
        if self.log.failovers:
            for event in self.log.failovers:
                lines.append(
                    f"Failover: shard {event['shard_id']} killed at "
                    f"{event['at_s']:.3f}s -> "
                    f"{event['rehomed_sessions']} sessions re-homed, "
                    f"{event['lost_frames']} in-flight frames lost"
                )
        else:
            lines.append("Failover: none")
        lines.append(
            f"Migrations: {len(self.log.migrations)} completed of "
            f"{self.log.migrations_planned} planned "
            f"({self.log.migrations_skipped} skipped) | re-home breaker "
            f"degraded {self.rehome_breaker_degraded} frames"
        )
        if self.log.rebalance_spawns or self.log.rebalance_drains:
            lines.append(
                f"Rebalancer: {self.log.rebalance_spawns} spawns, "
                f"{self.log.rebalance_drains} drains"
            )
        headers = [
            "Shard", "Status", "Sessions", "Done", "Degr",
            "Lost", "In", "Out", "Rehomed", "Util",
        ]
        rows = []
        for row in self.shard_rows:
            rows.append(
                [
                    row["shard_id"],
                    row["status"],
                    row["sessions"],
                    row["completed"],
                    row["degraded"],
                    row["lost_frames"],
                    row["migrations_in"],
                    row["migrations_out"],
                    row["rehomed_in"],
                    f"{row['utilization']:.0%}",
                ]
            )
        return "\n".join(lines) + "\n" + table_to_text(headers, rows, min_width=6)
