"""The sharded fleet controller.

:class:`FleetRuntime` owns N :class:`~repro.serve.fleet.shard.ShardRuntime`
event loops behind a consistent-hash :class:`~repro.serve.fleet.ring.HashRing`
and merges them into ONE deterministic discrete-event simulation: at every
step the next event is the earliest of

* the fleet's own **control heap** — shard kills from the chaos schedule,
  planned live migrations, rebalancer ticks — which at equal timestamps
  rank *before* any shard event (control reshapes the topology the data
  plane then runs on), and
* each shard's data-plane heap, shards tie-broken by id.

Both runs of the same config therefore pop the identical global event
sequence, and the final :class:`~repro.serve.telemetry.FleetReport` is
byte-identical — the property the recover layer's journal replay and the
CI byte-diff jobs rest on.

Conservation is exact and fleet-wide: every generated frame ends in
exactly one of ``completed`` (incl. degraded), ``shed``, ``pending`` or
``lost_shard``; :meth:`FleetRuntime.finish` re-derives the ledger from
the merged per-session stats and raises on any leak.

The runtime speaks the full ``repro.recover`` protocol (``start`` /
``peek_event`` / ``step`` / ``finish`` / ``state_dict`` / ``load_state``
with ``RUNTIME_KIND = "fleet"``), so whole-fleet checkpoint / kill /
restore reproduces the uninterrupted run's report byte-for-byte.
"""

from __future__ import annotations

import heapq

from repro.obs import NULL_OBS, Obs, PID_FLEET, PID_NET
from repro.serve.config import BatchServiceModel
from repro.serve.fleet.config import (
    FleetConfig,
    planned_migrations,
    rebalance_ticks,
)
from repro.serve.fleet.report import FleetLog, FleetSection, NetSection
from repro.serve.fleet.ring import HashRing
from repro.serve.fleet.shard import ShardRuntime
from repro.serve.fleet.transport import (
    FleetTransport,
    K_NET_DETECT,
    K_NET_HEARTBEAT,
    K_NET_SEND,
)
from repro.serve.request import build_fleet, fleet_requests
from repro.serve.telemetry import FleetReport, SessionStats, publish_fleet_metrics

# Control-event kinds.  Journal/peek encoding keeps them disjoint from
# shard events: a control event reports kind ``1..3`` while a shard
# event reports ``(shard_id + 1) * _SHARD_KIND_STRIDE + shard_kind``
# (shard kinds are 0..2), so the write-ahead journal can tell every
# event source apart from the (time, kind, seq) triple alone.  The net
# transport's control kinds (``repro.serve.fleet.transport.K_NET_*``)
# are *negative*, keeping them disjoint too.
_K_KILL, _K_MIGRATE, _K_REBALANCE = 1, 2, 3
_SHARD_KIND_STRIDE = 4


class FleetRuntime:
    """N serve shards, one hash ring, one deterministic event order."""

    RUNTIME_KIND = "fleet"

    def __init__(
        self,
        config: FleetConfig,
        service: "BatchServiceModel | None" = None,
        obs: "Obs | None" = None,
    ):
        self.config = config
        self.service = service if service is not None else BatchServiceModel()
        self.obs = obs if obs is not None else NULL_OBS
        #: The whole fleet's sessions, indexed by session id — a pure
        #: function of the serve template, shared by placement and
        #: restore.
        self.sessions = build_fleet(config.serve)
        self.ring = HashRing(vnodes=config.vnodes, seed=config.ring_seed)
        self.shards: dict[int, ShardRuntime] = {}
        self._next_shard_id = 0
        #: Control heap entries: ``(time_s, seq, kind, payload)``.
        self._control: list[tuple[float, int, int, "dict | None"]] = []
        self._control_seq = 0
        self._session_shard: dict[int, int] = {}
        self._rebalance_quiet_until = 0.0
        self.events_processed = 0
        self._started = False
        self.log = FleetLog()
        self.slo = None
        #: The lossy router<->shard transport, or None (perfect channel).
        self.transport: "FleetTransport | None" = (
            FleetTransport(config.net, obs=self.obs)
            if config.net.enabled
            else None
        )
        #: Net mode only: the ONE fleet-owned stats dict every shard
        #: aliases (see ShardRuntime.stats_shared).
        self._net_stats: dict[int, SessionStats] = {}
        #: Net mode only: completion horizon of router-side exhaustion
        #: degrades (they finish at now + reuse_bypass_s like any other
        #: degrade, but no shard's makespan sees them).
        self._net_makespan_s = 0.0
        if self.obs.enabled:
            self.obs.tracer.declare_track(
                PID_FLEET, "fleet", thread_name="control"
            )
            if self.transport is not None:
                self.obs.tracer.declare_track(
                    PID_NET, "fleet.net", thread_name="transport"
                )

    def attach_slo(self, engine) -> None:
        """Attach an online SLO engine, evaluated on the fleet's merged
        sim clock (see :meth:`repro.serve.runtime.ServeRuntime.attach_slo`)."""
        if not self.obs.enabled:
            raise ValueError("attach_slo requires an enabled Obs bundle")
        self.slo = engine

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _new_shard(self, sessions, spawned_at_s: "float | None") -> ShardRuntime:
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        shard = ShardRuntime(
            shard_id,
            self.config.serve,
            sessions=sessions,
            service=self.service,
            obs=self.obs.scoped(shard_id),
            failover=self.config.failover,
        )
        shard.spawned_at_s = spawned_at_s
        self.shards[shard_id] = shard
        self.ring.add(shard_id)
        return shard

    def _push_control(
        self, time_s: float, kind: int, payload: "dict | None"
    ) -> None:
        heapq.heappush(
            self._control, (time_s, self._control_seq, kind, payload)
        )
        self._control_seq += 1

    def _alive_shards(self) -> "list[ShardRuntime]":
        return [self.shards[sid] for sid in sorted(self.shards)
                if self.shards[sid].alive]

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Place the fleet on the ring, seed every shard's arrivals, and
        enqueue the control schedule (idempotent)."""
        if self._started:
            return
        placement_ids = [s.session_id for s in self.sessions]
        for _ in range(self.config.n_shards):
            self._new_shard([], spawned_at_s=None)
        placement = self.ring.assignment(placement_ids)
        # One global request stream: seq numbers are unique fleet-wide
        # (migrated frames carry theirs onto other shards).
        all_requests = fleet_requests(
            self.sessions, self.config.serve.deadline_s
        )
        if self.transport is not None:
            self._net_stats = {
                s.session_id: SessionStats(s.session_id)
                for s in self.sessions
            }
        for shard_id in sorted(placement):
            shard = self.shards[shard_id]
            members = set(placement[shard_id])
            shard.fleet = [self.sessions[sid] for sid in placement[shard_id]]
            if self.transport is not None:
                # Frames reach shards only over the transport, so the
                # shard seeds no arrivals and aliases the shared ledger.
                shard.stats = self._net_stats
                shard.stats_shared = True
            else:
                shard.stats = {
                    sid: SessionStats(sid) for sid in placement[shard_id]
                }
            for sid in placement[shard_id]:
                self._session_shard[sid] = shard_id
            if shard.obs.enabled:
                shard._declare_tracks()
            shard.start(
                []
                if self.transport is not None
                else [r for r in all_requests if r.session_id in members]
            )
        if self.transport is not None:
            self._seed_net_schedule(all_requests)
        for kill in sorted(
            self.config.kills, key=lambda k: (k.at_s, k.shard_id)
        ):
            self._push_control(kill.at_s, _K_KILL, {"shard": kill.shard_id})
        plan = planned_migrations(self.config)
        self.log.migrations_planned = len(plan)
        for migration in plan:
            self._push_control(
                migration.at_s,
                _K_MIGRATE,
                {"session_id": migration.session_id, "to": migration.to_shard},
            )
        for tick in rebalance_ticks(self.config):
            self._push_control(tick, _K_REBALANCE, None)
        self._started = True

    def _seed_net_schedule(self, all_requests) -> None:
        """Enqueue the whole net-mode schedule: every frame's SEND at
        its arrival, heartbeat ticks per initial shard, detector ticks.

        Heartbeats and detector evaluations run for the traffic window
        (``duration_s``) only: the detector is live exactly while frames
        are, so a kill in the final silence of a run goes undiscovered —
        as it would in production until the next frame cared.
        """
        net = self.config.net
        duration = self.config.serve.duration_s
        for request in all_requests:
            self._push_control(request.arrival_s, K_NET_SEND, request.to_dict())
        for shard_id in sorted(self.shards):
            self.transport.register_shard(shard_id)
            tick = 0
            while (at_s := (tick + 1) * net.heartbeat_s) <= duration:
                self._push_control(
                    at_s, K_NET_HEARTBEAT, {"shard": shard_id, "i": tick}
                )
                tick += 1
        tick = 0
        while (at_s := (tick + 1) * net.detect_every_s) <= duration:
            self._push_control(at_s, K_NET_DETECT, None)
            tick += 1

    # ------------------------------------------------------------------
    # Merged event order
    # ------------------------------------------------------------------
    def _next_source(self):
        """``("control", t, kind, seq)`` or ``("shard", id, t, kind, seq)``
        of the globally next event; None when everything is drained.

        Control events carry rank -1 so they precede shard events at the
        same instant; shards tie-break by id.
        """
        best_key = None
        best = None
        if self._control:
            time_s, seq, kind, _ = self._control[0]
            best_key = (time_s, -1)
            best = ("control", time_s, kind, seq)
        for shard_id in sorted(self.shards):
            head = self.shards[shard_id].peek_event()
            if head is None:
                continue
            time_s, kind, seq = head
            key = (time_s, shard_id)
            if best_key is None or key < best_key:
                best_key = key
                best = ("shard", shard_id, time_s, kind, seq)
        return best

    def peek_event(self) -> "tuple[float, int, int] | None":
        """``(time_s, kind, seq)`` of the next event for the journal."""
        head = self._next_source()
        if head is None:
            return None
        if head[0] == "control":
            _, time_s, kind, seq = head
            return (time_s, kind, seq)
        _, shard_id, time_s, kind, seq = head
        return (time_s, (shard_id + 1) * _SHARD_KIND_STRIDE + kind, seq)

    def step(self) -> bool:
        """Apply the globally next event; False once everything drained."""
        head = self._next_source()
        if head is None:
            return False
        if head[0] == "control":
            now, _, kind, payload = heapq.heappop(self._control)
            if kind < 0:
                self.transport.handle(self, kind, payload, now)
            elif kind == _K_KILL:
                self._apply_kill(payload["shard"], now)
            elif kind == _K_MIGRATE:
                self._apply_migration(payload, now)
            else:
                self._apply_rebalance(now)
            now_s = now
        else:
            shard = self.shards[head[1]]
            shard.step()
            now_s = head[2]
        self.events_processed += 1
        if self.slo is not None:
            self.slo.maybe_evaluate(now_s)
        return True

    # ------------------------------------------------------------------
    # Control-plane handlers
    # ------------------------------------------------------------------
    def _apply_kill(self, shard_id: int, now: float) -> None:
        """Chaos shard failure: lose in-flight frames, re-home sessions."""
        shard = self.shards[shard_id]
        if self.transport is not None:
            # Net mode: the shard dies *silently*.  Nothing re-homes and
            # the ring keeps routing to the corpse until the failure
            # detector stops seeing heartbeats and suspects it.
            lost = shard.kill_silent(now)
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "fleet.kill", now, cat="fleet", pid=PID_FLEET,
                    args={"shard": shard_id, "lost_frames": lost},
                )
            return
        self.ring.remove(shard_id)
        payloads, lost = shard.kill(now)
        rehomed = 0
        for sid in sorted(payloads):
            target_id = self.ring.route(sid)
            self.shards[target_id].admit_migrated(
                payloads[sid], now, rehomed=True
            )
            self._session_shard[sid] = target_id
            rehomed += 1
        self.log.record_failover(now, shard_id, rehomed, lost)
        if self.obs.enabled:
            self.obs.tracer.instant(
                "fleet.failover", now, cat="fleet", pid=PID_FLEET,
                args={
                    "shard": shard_id,
                    "rehomed_sessions": rehomed,
                    "lost_frames": lost,
                },
            )
            self.obs.metrics.counter("fleet_failovers_total").inc()
            self.obs.metrics.counter("fleet_rehomed_sessions_total").inc(rehomed)

    # ------------------------------------------------------------------
    # Net-transport handlers (called back by FleetTransport)
    # ------------------------------------------------------------------
    def _net_move_session(
        self, session_id: int, target_id: int, now: float
    ) -> None:
        """Move one session between shards without touching frame state.

        Net-mode movement is routing-table surgery only: queued frames
        stay where they physically are (the source keeps completing
        stragglers into the shared ledger; retransmits re-resolve the
        target), so nothing is extracted or requeued.
        """
        source = self.shards[self._session_shard[session_id]]
        target = self.shards[target_id]
        session = next(
            s for s in source.fleet if s.session_id == session_id
        )
        source.fleet = [
            s for s in source.fleet if s.session_id != session_id
        ]
        source._rehome_guard_until.pop(session_id, None)
        target.fleet.append(session)
        target.rehomed_in += 1
        if self.config.failover.guard_s > 0:
            target._rehome_guard_until[session_id] = (
                now + self.config.failover.guard_s
            )
        self._session_shard[session_id] = target_id

    def _net_suspect(self, shard_id: int, phi: float, now: float) -> None:
        """Failure-detector suspicion: evict the shard from the ring and
        re-home its sessions — whether the shard is dead or merely
        silent (partitioned / gray-slow).  A false suspicion is healed
        by the shard's next heartbeat (:meth:`_net_heal`)."""
        transport = self.transport
        shard = self.shards[shard_id]
        transport.suspected.add(shard_id)
        transport.counters["suspected"] += 1
        dead = shard.killed_at_s is not None
        if dead:
            transport.detect_latencies.append(now - shard.killed_at_s)
        else:
            transport.counters["false_suspects"] += 1
        transport.transitions.append(
            {
                "at_s": now,
                "shard": shard_id,
                "kind": "suspect",
                "phi": round(phi, 3),
                "dead": dead,
            }
        )
        if shard_id in self.ring:
            self.ring.remove(shard_id)
        rehomed = 0
        if len(self.ring) > 0:
            for sid in sorted(
                s.session_id for s in shard.fleet
            ):
                target_id = self.ring.route(sid)
                self._net_move_session(sid, target_id, now)
                transport.displaced[sid] = shard_id
                rehomed += 1
        if dead:
            # Only real failures enter the fleet log; false suspicions
            # are the transport's own story (NetSection transitions).
            self.log.record_failover(now, shard_id, rehomed, shard.lost_frames)
        if self.obs.enabled:
            self.obs.tracer.instant(
                "net.suspect", now, cat="net", pid=PID_NET,
                args={
                    "shard": shard_id,
                    "phi": round(phi, 3),
                    "dead": int(dead),
                    "rehomed_sessions": rehomed,
                },
            )
            self.obs.metrics.counter("net_suspected_total").inc()
            if not dead:
                self.obs.metrics.counter("net_false_suspects_total").inc()
            if dead:
                self.obs.metrics.counter("fleet_failovers_total").inc()
                self.obs.metrics.counter(
                    "fleet_rehomed_sessions_total"
                ).inc(rehomed)

    def _net_heal(self, shard_id: int, now: float) -> None:
        """A suspected shard's heartbeat arrived: it was a false alarm
        (or a partition healed).  Rejoin it to the ring and bounce back
        the displaced sessions the ring again assigns to it."""
        transport = self.transport
        transport.suspected.discard(shard_id)
        transport.counters["heals"] += 1
        transport.transitions.append(
            {
                "at_s": now,
                "shard": shard_id,
                "kind": "heal",
                "phi": 0.0,
                "dead": False,
            }
        )
        if shard_id not in self.ring:
            self.ring.add(shard_id)
        bounced = 0
        for sid in sorted(transport.displaced):
            home = self.ring.route(sid)
            if home == shard_id:
                if self._session_shard[sid] != shard_id:
                    self._net_move_session(sid, shard_id, now)
                    bounced += 1
                del transport.displaced[sid]
            elif transport.displaced[sid] == shard_id:
                # Its ring home is elsewhere now that the ring changed;
                # it is no longer this shard's refugee.
                del transport.displaced[sid]
        transport.counters["heal_bounce_sessions"] += bounced
        if self.obs.enabled:
            self.obs.tracer.instant(
                "net.heal", now, cat="net", pid=PID_NET,
                args={"shard": shard_id, "bounced_sessions": bounced},
            )
            self.obs.metrics.counter("net_heals_total").inc()
            self.obs.metrics.counter(
                "net_heal_bounce_sessions_total"
            ).inc(bounced)

    def _net_exhaust(self, frame: dict, now: float) -> None:
        """Retries exhausted on an unapplied frame: resolve it at the
        router per policy — degrade to the buffered gaze (the client-side
        fallback) or account it lost."""
        transport = self.transport
        stats = self._net_stats[int(frame["session_id"])]
        if self.config.net.on_exhaust == "degrade":
            stats.record_degraded(
                self.config.serve.reuse_bypass_s,
                self.config.serve.deadline_s,
            )
            self._net_makespan_s = max(
                self._net_makespan_s,
                now + self.config.serve.reuse_bypass_s,
            )
            transport.counters["exhausted_degraded"] += 1
        else:
            stats.record_lost_net()
            transport.counters["exhausted_lost"] += 1
        if self.obs.enabled:
            self.obs.tracer.instant(
                "net.exhaust", now, cat="net", pid=PID_NET,
                args={
                    "seq": int(frame["seq"]),
                    "session": int(frame["session_id"]),
                    "policy": self.config.net.on_exhaust,
                },
            )
            self.obs.metrics.counter("net_exhausted_total").inc()

    def _apply_migration(self, payload: dict, now: float) -> None:
        """Planned live migration of one session."""
        session_id = int(payload["session_id"])
        source_id = self._session_shard[session_id]
        source = self.shards[source_id]
        target_id = payload.get("to")
        if target_id is None:
            if len(self.ring) <= 1:
                self.log.migrations_skipped += 1
                return
            target_id = self.ring.route(session_id, avoid=source_id)
        target = self.shards.get(target_id)
        if (
            target is None
            or target_id == source_id
            or not target.alive
            or not source.alive
        ):
            self.log.migrations_skipped += 1
            return
        moved = source.extract_session(session_id, now)
        target.admit_migrated(moved, now, rehomed=False)
        self._session_shard[session_id] = target_id
        self.log.record_migration(
            now, session_id, source_id, target_id, len(moved.requeue)
        )
        if self.obs.enabled:
            self.obs.tracer.instant(
                "fleet.migrate", now, cat="fleet", pid=PID_FLEET,
                args={
                    "session": session_id,
                    "from": source_id,
                    "to": target_id,
                    "moved_frames": len(moved.requeue),
                },
            )
            self.obs.metrics.counter("fleet_migrations_total").inc()

    def _move_sessions(
        self, source: ShardRuntime, target: ShardRuntime, session_ids, now: float
    ) -> None:
        for sid in session_ids:
            moved = source.extract_session(sid, now)
            target.admit_migrated(moved, now, rehomed=False)
            self._session_shard[sid] = target.shard_id
            self.log.record_migration(
                now, sid, source.shard_id, target.shard_id,
                len(moved.requeue), reason="rebalance",
            )

    def _apply_rebalance(self, now: float) -> None:
        """Hysteretic autoscaler tick: spawn-and-fill on a hot shard,
        drain-and-retire a spawned shard when the fleet has cooled."""
        rebalancer = self.config.rebalancer
        # Windows reset every tick even when the cooldown suppresses
        # action, so each decision sees only the last interval.
        alive = self._alive_shards()
        waits = {shard.shard_id: shard.take_queue_wait_p95() for shard in alive}
        if now < self._rebalance_quiet_until:
            return
        hot = [sid for sid in waits if waits[sid] > rebalancer.p95_high_s]
        if hot:
            if len(alive) >= rebalancer.max_shards:
                return
            hottest_id = sorted(hot, key=lambda sid: (-waits[sid], sid))[0]
            hottest = self.shards[hottest_id]
            n_move = min(
                rebalancer.sessions_per_move,
                max(len(hottest.fleet) - 1, 0),
            )
            if n_move == 0:
                return
            target = self._new_shard([], spawned_at_s=now)
            target.start()
            victims = sorted(s.session_id for s in hottest.fleet)[:n_move]
            self._move_sessions(hottest, target, victims, now)
            self.log.rebalance_spawns += 1
            self._rebalance_quiet_until = now + rebalancer.cooldown_s
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "fleet.rebalance.spawn", now, cat="fleet", pid=PID_FLEET,
                    args={
                        "shard": target.shard_id,
                        "from": hottest_id,
                        "moved_sessions": len(victims),
                    },
                )
                self.obs.metrics.counter("fleet_rebalance_spawns_total").inc()
            return
        spawned = [s for s in alive if s.spawned_at_s is not None]
        all_cool = all(w < rebalancer.p95_low_s for w in waits.values())
        if (
            all_cool
            and spawned
            and len(alive) > max(rebalancer.min_shards, 1)
        ):
            victim = sorted(
                spawned, key=lambda s: (len(s.fleet), s.shard_id)
            )[0]
            self.ring.remove(victim.shard_id)
            session_ids = sorted(s.session_id for s in victim.fleet)
            for sid in session_ids:
                target_id = self.ring.route(sid)
                self._move_sessions(
                    victim, self.shards[target_id], [sid], now
                )
            victim.retired_at_s = now
            self.log.rebalance_drains += 1
            self._rebalance_quiet_until = now + rebalancer.cooldown_s
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "fleet.rebalance.drain", now, cat="fleet", pid=PID_FLEET,
                    args={
                        "shard": victim.shard_id,
                        "moved_sessions": len(session_ids),
                    },
                )
                self.obs.metrics.counter("fleet_rebalance_drains_total").inc()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish(self) -> FleetReport:
        """Merge shard telemetry into one report; enforce conservation."""
        head = self._next_source()
        if head is not None:
            raise RuntimeError(f"finish() with events still pending: {head}")
        if self.transport is not None and self.transport.pending:
            raise RuntimeError(
                f"finish() with {len(self.transport.pending)} unresolved "
                f"envelopes: {sorted(self.transport.pending)[:8]}"
            )
        shard_ids = sorted(self.shards)
        duration = max(self.config.serve.duration_s, self._net_makespan_s)
        for sid in shard_ids:
            duration = max(duration, self.shards[sid]._makespan_s)
        merged: list[SessionStats] = []
        occupancy: dict[int, int] = {}
        busy_workers = 0.0
        total_workers = 0
        rows = []
        for sid in shard_ids:
            shard = self.shards[sid]
            for request in shard.batcher.drain():
                shard.stats[request.session_id].record_pending(request.path)
            shard.batcher.check_accounting()
            merged.extend(shard._stats_values())
            for size, count in shard.pool.batch_occupancy.items():
                occupancy[size] = occupancy.get(size, 0) + count
            utilization = shard.pool.utilization(duration)
            busy_workers += utilization * shard.pool.n_workers
            total_workers += shard.pool.n_workers
            rows.append(
                {
                    "shard_id": sid,
                    "status": shard.status,
                    "spawned_at_s": shard.spawned_at_s,
                    "killed_at_s": shard.killed_at_s,
                    "retired_at_s": shard.retired_at_s,
                    "sessions": len(shard.fleet),
                    "completed": shard.completed_frames,
                    "degraded": shard.degraded_frames,
                    "lost_frames": shard.lost_frames,
                    "migrations_in": shard.migrations_in,
                    "migrations_out": shard.migrations_out,
                    "rehomed_in": shard.rehomed_in,
                    "breaker_degraded": shard.breaker_degraded,
                    "utilization": utilization,
                }
            )
        if self.transport is not None:
            # Shared-ledger mode: every shard's _stats_values() is empty
            # (stats_shared); the fleet owns the one merged ledger.
            merged = [
                self._net_stats[sid] for sid in sorted(self._net_stats)
            ]
        merged.sort(key=lambda stats: stats.session_id)
        self._check_conservation(merged)
        total_batches = sum(occupancy.values())
        mean_batch = (
            sum(size * count for size, count in occupancy.items())
            / total_batches
            if total_batches
            else 0.0
        )
        section = FleetSection(
            vnodes=self.config.vnodes,
            shards_started=self.config.n_shards,
            shard_rows=rows,
            log=self.log,
            rehome_breaker_degraded=sum(
                self.shards[sid].breaker_degraded for sid in shard_ids
            ),
        )
        net_section = (
            NetSection.from_transport(self.config.net, self.transport)
            if self.transport is not None
            else None
        )
        report = FleetReport(
            sessions=merged,
            duration_s=duration,
            deadline_s=self.config.serve.deadline_s,
            batch_occupancy=occupancy,
            worker_utilization=(
                busy_workers / total_workers if total_workers else 0.0
            ),
            mean_batch_size=mean_batch,
            n_workers=total_workers,
            max_batch=self.config.serve.max_batch,
            predictions=None,
            faults=None,
            shards=section,
            net=net_section,
        )
        if self.obs.enabled:
            publish_fleet_metrics(report, self.obs.metrics)
        if self.slo is not None:
            self.slo.finalize(duration)
        return report

    def _check_conservation(self, merged: "list[SessionStats]") -> None:
        """Fleet-wide frame ledger: every generated frame is accounted
        exactly once, across every shard it may have visited."""
        if len(merged) != len(self.sessions):
            raise RuntimeError(
                f"conservation leak: {len(merged)} session ledgers for "
                f"{len(self.sessions)} sessions"
            )
        for stats in merged:
            expected = self.sessions[stats.session_id].n_frames
            if stats.total_frames != expected:
                raise RuntimeError(
                    f"conservation leak: session {stats.session_id} "
                    f"generated {expected} frames but the ledger accounts "
                    f"{stats.total_frames} (completed {stats.completed} + "
                    f"shed {stats.shed} + pending {stats.pending} + "
                    f"lost_input {stats.lost_input} + "
                    f"lost_shard {stats.lost_shard} + "
                    f"lost_net {stats.lost_net})"
                )

    def run(self) -> FleetReport:
        self.start()
        while self.step():
            pass
        return self.finish()

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full JSON-safe snapshot: the control heap in raw order, the
        ring, the session→shard map, and every shard's own snapshot."""
        return {
            "started": self._started,
            "events_processed": self.events_processed,
            "control": [
                [time_s, seq, kind, payload]
                for time_s, seq, kind, payload in self._control
            ],
            "control_seq": self._control_seq,
            "ring": self.ring.state_dict(),
            "next_shard_id": self._next_shard_id,
            "session_shard": [
                [sid, self._session_shard[sid]]
                for sid in sorted(self._session_shard)
            ],
            "rebalance_quiet_until_s": self._rebalance_quiet_until,
            "log": self.log.state_dict(),
            "shards": [
                {
                    "shard_id": sid,
                    "sessions": [
                        s.session_id for s in self.shards[sid].fleet
                    ],
                    "state": self.shards[sid].state_dict(),
                }
                for sid in sorted(self.shards)
            ],
            **(
                {}
                if self.transport is None
                else {
                    "net": {
                        "transport": self.transport.state_dict(),
                        "stats": [
                            self._net_stats[sid].state_dict()
                            for sid in sorted(self._net_stats)
                        ],
                        "makespan_s": self._net_makespan_s,
                    }
                }
            ),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto a freshly
        constructed runtime of the same config."""
        self._started = bool(state["started"])
        self.events_processed = int(state["events_processed"])
        self._control = [
            (float(time_s), int(seq), int(kind), payload)
            for time_s, seq, kind, payload in state["control"]
        ]
        self._control_seq = int(state["control_seq"])
        self.ring = HashRing.from_state(state["ring"])
        self._next_shard_id = int(state["next_shard_id"])
        self._session_shard = {
            int(sid): int(shard) for sid, shard in state["session_shard"]
        }
        self._rebalance_quiet_until = float(state["rebalance_quiet_until_s"])
        self.log = FleetLog()
        self.log.load_state(state["log"])
        self.shards = {}
        for entry in state["shards"]:
            shard_id = int(entry["shard_id"])
            sessions = [self.sessions[int(sid)] for sid in entry["sessions"]]
            shard = ShardRuntime(
                shard_id,
                self.config.serve,
                sessions=sessions,
                service=self.service,
                obs=self.obs.scoped(shard_id),
                failover=self.config.failover,
            )
            shard.load_state(entry["state"])
            self.shards[shard_id] = shard
        if self.transport is not None:
            net = state["net"]
            self.transport.load_state(net["transport"])
            self._net_stats = {}
            for entry in net["stats"]:
                stats = SessionStats(int(entry["session_id"]))
                stats.load_state(entry)
                self._net_stats[stats.session_id] = stats
            self._net_makespan_s = float(net["makespan_s"])
            for shard in self.shards.values():
                shard.stats = self._net_stats
                shard.stats_shared = True

    @classmethod
    def restore(
        cls,
        directory,
        service: "BatchServiceModel | None" = None,
        inference=None,
        obs: "Obs | None" = None,
    ):
        """Warm-restart whatever runtime the checkpoint in ``directory``
        holds — a sharded fleet, or (for checkpoints written before the
        fleet existed, when ``FleetRuntime`` aliased ``ServeRuntime``) a
        single-shard serve/chaos runtime.  Compatibility contract: old
        call sites keep working against old checkpoints.
        """
        from repro.recover.manager import restore_runtime

        restored = restore_runtime(
            directory, service=service, inference=inference, obs=obs
        )
        return restored.runtime


def run_fleet(
    config: FleetConfig,
    service: "BatchServiceModel | None" = None,
    obs: "Obs | None" = None,
) -> FleetReport:
    """Run one sharded fleet simulation and return its report."""
    return FleetRuntime(config, service=service, obs=obs).run()
