"""One shard of the fleet: a ServeRuntime that sessions can enter and leave.

:class:`ShardRuntime` keeps the base event loop byte-for-byte (arrivals,
window expiries, completions pop off the same heap with the same
tie-breaks) and adds the three fleet-lifecycle operations the controller
needs:

* :meth:`extract_session` — live migration *out*: remove one session's
  future arrivals from the heap, its queued frames from the batcher, and
  its in-flight frames from dispatched batches, packaged as a
  :class:`MigrationPayload`.
* :meth:`admit_migrated` — live migration *in*: re-seed the arrivals and
  requeue the carried frames on this shard's batcher.
* :meth:`kill` — chaos failover: frames physically on the shard (queued
  or in flight) die with it and are recorded ``lost_shard`` on their
  sessions; future arrivals re-home with their sessions, bounding frame
  loss to exactly the in-flight set at kill time.

Sessions re-homed by a failover are *guarded* for a configurable window:
their predict frames pass through a re-admission
:class:`~repro.faults.breaker.CircuitBreaker` so a thundering herd onto
a surviving shard degrades to gaze reuse instead of blowing through the
queue budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.faults.breaker import CircuitBreaker
from repro.obs import NULL_OBS, Obs, PID_BATCHER, PID_WORKERS, session_pid
from repro.serve.batcher import DynamicBatcher
from repro.serve.config import BatchServiceModel, ServeConfig
from repro.serve.fleet.config import FailoverConfig
from repro.serve.request import ClientSession, FrameRequest
from repro.serve.runtime import ServeRuntime, _ARRIVAL, _COMPLETE, _WINDOW
from repro.serve.telemetry import ServeInstruments, SessionStats
from repro.serve.workers import WorkerPool
from repro.system.metrics import percentile_summary


@dataclass
class MigrationPayload:
    """Everything that moves with a session between shards."""

    session: ClientSession
    stats: SessionStats
    #: Arrivals not yet delivered, sorted by (arrival_s, seq).
    arrivals: list[FrameRequest] = field(default_factory=list)
    #: Frames pulled out of the source queue / in-flight batches, to be
    #: requeued on the destination; sorted by (arrival_s, seq).
    requeue: list[FrameRequest] = field(default_factory=list)


def _frame_order(request: FrameRequest) -> tuple[float, int]:
    return (request.arrival_s, request.seq)


class ShardRuntime(ServeRuntime):
    """A ServeRuntime whose session set is dynamic (fleet membership)."""

    def __init__(
        self,
        shard_id: int,
        template: ServeConfig,
        sessions: "list[ClientSession] | None" = None,
        service: "BatchServiceModel | None" = None,
        obs: "Obs | None" = None,
        failover: "FailoverConfig | None" = None,
    ):
        # Deliberately does NOT call ServeRuntime.__init__: the base
        # validates len(fleet) == config.n_sessions, which cannot hold
        # for a shard (subset of the fleet, possibly empty when freshly
        # spawned by the rebalancer).  ``template`` sizes the per-shard
        # pool/batcher; its n_sessions refers to the whole fleet.
        if shard_id < 0:
            raise ValueError(f"shard_id must be non-negative, got {shard_id}")
        self.shard_id = shard_id
        self.config = template
        self.service = service if service is not None else BatchServiceModel()
        self.inference = None
        self.fleet = list(sessions) if sessions is not None else []
        self.pool = WorkerPool(template.n_workers, self.service)
        self.batcher = DynamicBatcher(template.max_batch, template.batch_window_s)
        # Keyed by session id (not a dense list): membership changes at
        # runtime.  All base-class paths index ``stats[session_id]``, so
        # the dict is a drop-in.
        self.stats: dict[int, SessionStats] = {
            s.session_id: SessionStats(s.session_id) for s in self.fleet
        }
        # Under the net transport every shard aliases ONE fleet-owned
        # stats dict (a suspected-but-alive shard keeps completing
        # stragglers for sessions that already re-homed).  The flag
        # keeps per-shard snapshots from serializing the shared dict
        # once per shard — the FleetRuntime serializes it exactly once.
        self.stats_shared = False
        self.predictions = None
        self._heap: list[tuple[float, int, int, object]] = []
        self._event_seq = 0
        self._makespan_s = 0.0
        self.events_processed = 0
        self._started = False
        self.obs = obs if obs is not None else NULL_OBS
        self._instruments: "ServeInstruments | None" = None
        if self.obs.enabled:
            self._instruments = ServeInstruments(self.obs.metrics)
            self._declare_tracks()
        self.slo = None
        # --- fleet lifecycle state -----------------------------------
        self.failover = failover if failover is not None else FailoverConfig()
        self.rehome_breaker = CircuitBreaker(
            failure_threshold=self.failover.breaker_threshold,
            cooldown_s=self.failover.breaker_cooldown_s,
        )
        #: session id -> absolute sim time until which re-admission of
        #: that (re-homed) session's predict frames is breaker-guarded.
        self._rehome_guard_until: dict[int, float] = {}
        #: Queue waits of frames dispatched since the last rebalancer
        #: tick (the rebalancer's P95 window).
        self._wait_samples: list[float] = []
        self.spawned_at_s: "float | None" = None
        self.killed_at_s: "float | None" = None
        self.retired_at_s: "float | None" = None
        # Per-shard frame counters (session stats travel with sessions;
        # these stay, attributing work to the shard that did it).
        self.completed_frames = 0
        self.degraded_frames = 0
        self.lost_frames = 0
        self.migrations_in = 0
        self.migrations_out = 0
        self.rehomed_in = 0
        self.breaker_degraded = 0

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        if self.killed_at_s is not None:
            return "killed"
        if self.retired_at_s is not None:
            return "retired"
        return "alive"

    @property
    def alive(self) -> bool:
        return self.killed_at_s is None and self.retired_at_s is None

    # ------------------------------------------------------------------
    # Base-class hooks
    # ------------------------------------------------------------------
    def _stats_values(self) -> "list[SessionStats]":
        if self.stats_shared:
            return []
        return [self.stats[sid] for sid in sorted(self.stats)]

    def _load_stats(self, saved: list) -> None:
        self.stats = {}
        for entry in saved:
            stats = SessionStats(int(entry["session_id"]))
            stats.load_state(entry)
            self.stats[stats.session_id] = stats

    def _record_completion(self, request: FrameRequest, done_s: float) -> None:
        self.completed_frames += 1
        super()._record_completion(request, done_s)

    def _degrade_now(
        self, request: FrameRequest, now: float, cause: str = "admission"
    ) -> None:
        self.degraded_frames += 1
        super()._degrade_now(request, now, cause)

    def _note_dispatch(self, batch: "list[FrameRequest]", now: float) -> None:
        for request in batch:
            self._wait_samples.append(now - request.arrival_s)

    def _admit(self, request: FrameRequest, now: float) -> bool:
        guard_until = self._rehome_guard_until.get(request.session_id)
        if guard_until is not None:
            if now > guard_until:
                del self._rehome_guard_until[request.session_id]
            else:
                breaker = self.rehome_breaker
                if not breaker.allow(now):
                    self.breaker_degraded += 1
                    self._degrade_now(request, now, cause="failover")
                    return False
                breaker.note_dispatch(now)
                admitted = super()._admit(request, now)
                if admitted:
                    breaker.record_success(now)
                else:
                    breaker.record_failure(now)
                return admitted
        return super()._admit(request, now)

    # ------------------------------------------------------------------
    # Rebalancer window
    # ------------------------------------------------------------------
    def take_queue_wait_p95(self) -> float:
        """P95 queue wait over the window since the last call; resets."""
        if not self._wait_samples:
            return 0.0
        p95 = float(percentile_summary(self._wait_samples, (95,))["p95"])
        self._wait_samples = []
        return p95

    # ------------------------------------------------------------------
    # Heap surgery (shared by migration and failover)
    # ------------------------------------------------------------------
    def _extract_future_arrivals(self, session_id: int) -> list[FrameRequest]:
        keep, extracted = [], []
        for entry in self._heap:
            _, kind, _, payload = entry
            if kind == _ARRIVAL and payload.session_id == session_id:
                extracted.append(payload)
            else:
                keep.append(entry)
        if extracted:
            self._heap = keep
            heapq.heapify(self._heap)
            extracted.sort(key=_frame_order)
        return extracted

    def _extract_inflight(self, session_id: int) -> list[FrameRequest]:
        """Pull one session's frames out of dispatched batches.

        The COMPLETE event still fires (the worker stays busy for the
        full batch's service time — the work was already started), but
        the migrated frames' latencies are recorded on the destination
        shard after requeueing instead of here.
        """
        pulled: list[FrameRequest] = []
        for _, kind, _, payload in self._heap:
            if kind == _COMPLETE:
                _, batch = payload
                mine = [r for r in batch if r.session_id == session_id]
                if mine:
                    batch[:] = [r for r in batch if r.session_id != session_id]
                    pulled.extend(mine)
        pulled.sort(key=_frame_order)
        return pulled

    # ------------------------------------------------------------------
    # Fleet lifecycle
    # ------------------------------------------------------------------
    def extract_session(self, session_id: int, now: float) -> MigrationPayload:
        """Remove one session and everything it owns (live migration)."""
        session = next(
            (s for s in self.fleet if s.session_id == session_id), None
        )
        if session is None:
            raise KeyError(f"session {session_id} not on shard {self.shard_id}")
        self.fleet = [s for s in self.fleet if s.session_id != session_id]
        stats = self.stats.pop(session_id)
        arrivals = self._extract_future_arrivals(session_id)
        requeue = self.batcher.extract_session(session_id)
        requeue.extend(self._extract_inflight(session_id))
        requeue.sort(key=_frame_order)
        self._rehome_guard_until.pop(session_id, None)
        self.migrations_out += 1
        if self.obs.enabled:
            self.obs.tracer.instant(
                "migrate.out", now, cat="fleet",
                pid=session_pid(session_id),
                args={"moved_frames": len(requeue)},
            )
        return MigrationPayload(session, stats, arrivals, requeue)

    def admit_migrated(
        self, payload: MigrationPayload, now: float, rehomed: bool = False
    ) -> None:
        """Install a migrated session: arrivals re-seeded, carried frames
        requeued ahead of the window rule (their arrival times are old)."""
        session_id = payload.session.session_id
        if session_id in self.stats:
            raise ValueError(
                f"session {session_id} already on shard {self.shard_id}"
            )
        self.fleet.append(payload.session)
        self.stats[session_id] = payload.stats
        if self.obs.enabled:
            self.obs.tracer.declare_track(
                session_pid(session_id),
                f"session-{session_id}",
                thread_name="frames",
            )
            self.obs.tracer.instant(
                "rehome.in" if rehomed else "migrate.in", now, cat="fleet",
                pid=session_pid(session_id),
                args={"moved_frames": len(payload.requeue)},
            )
        for request in payload.arrivals:
            self._push(request.arrival_s, _ARRIVAL, request)
        if rehomed:
            self.rehomed_in += 1
            if self.failover.guard_s > 0:
                self._rehome_guard_until[session_id] = (
                    now + self.failover.guard_s
                )
        else:
            self.migrations_in += 1
        if payload.requeue:
            self.batcher.requeue(payload.requeue)
            self._try_dispatch(now)
            if len(self.batcher) > 0 and self.batcher.window_s > 0:
                deadline = self.batcher.next_deadline_s()
                if deadline is not None:
                    self._push(deadline, _WINDOW, None)

    def kill(self, now: float) -> "tuple[dict[int, MigrationPayload], int]":
        """Fail the shard: queued + in-flight frames are lost with it,
        sessions (with their future arrivals) are packaged for re-homing.

        Returns ``(payloads keyed by session id, frames lost)``.  The
        batcher's conservation ledger stays closed — lost frames are
        recorded ``lost_shard`` on their sessions, never silently
        dropped.
        """
        if self.killed_at_s is not None:
            raise RuntimeError(f"shard {self.shard_id} already killed")
        lost = 0
        for request in self.batcher.drain():
            self.stats[request.session_id].record_lost_shard()
            lost += 1
        arrivals_by_sid: dict[int, list[FrameRequest]] = {}
        for _, kind, _, payload in self._heap:
            if kind == _COMPLETE:
                _, batch = payload
                for request in batch:
                    self.stats[request.session_id].record_lost_shard()
                    lost += 1
            elif kind == _ARRIVAL:
                arrivals_by_sid.setdefault(payload.session_id, []).append(
                    payload
                )
        self._heap = []
        self.batcher.check_accounting()
        self.lost_frames = lost
        payloads: dict[int, MigrationPayload] = {}
        for session in sorted(self.fleet, key=lambda s: s.session_id):
            sid = session.session_id
            arrivals = sorted(
                arrivals_by_sid.get(sid, []), key=_frame_order
            )
            payloads[sid] = MigrationPayload(
                session, self.stats.pop(sid), arrivals, []
            )
        self.fleet = []
        self._rehome_guard_until = {}
        self.killed_at_s = now
        if self.obs.enabled:
            self.obs.tracer.instant(
                "shard.kill", now, cat="fleet", pid=PID_WORKERS,
                args={"lost_frames": lost, "sessions": len(payloads)},
            )
        return payloads, lost

    def kill_silent(self, now: float) -> int:
        """Fail the shard *without telling anyone* (net-transport mode).

        Queued + in-flight frames die with the shard and are recorded
        ``lost_shard``, exactly as in :meth:`kill` — but sessions stay
        on the fleet list and nothing is packaged for re-homing: under
        the lossy transport nobody knows the shard is dead until the
        failure detector stops seeing heartbeats and *suspects* it.
        Returns the number of frames lost.
        """
        if self.killed_at_s is not None:
            raise RuntimeError(f"shard {self.shard_id} already killed")
        lost = 0
        for request in self.batcher.drain():
            self.stats[request.session_id].record_lost_shard()
            lost += 1
        for _, kind, _, payload in self._heap:
            if kind == _COMPLETE:
                _, batch = payload
                for request in batch:
                    self.stats[request.session_id].record_lost_shard()
                    lost += 1
        self._heap = []
        self.batcher.check_accounting()
        self.lost_frames = lost
        self._rehome_guard_until = {}
        self.killed_at_s = now
        if self.obs.enabled:
            self.obs.tracer.instant(
                "shard.kill", now, cat="fleet", pid=PID_WORKERS,
                args={"lost_frames": lost, "silent": 1},
            )
        return lost

    def start(self, requests: "list[FrameRequest] | None" = None) -> None:
        """Seed the given arrivals (idempotent).

        The fleet controller generates ALL frame requests once from the
        dense session list — global ``seq`` numbers must be unique
        fleet-wide because migrated frames carry theirs onto other
        shards — and hands each shard its slice in global arrival
        order.  A freshly spawned shard starts with none.
        """
        if self._started:
            return
        for request in requests or []:
            self._push(request.arrival_s, _ARRIVAL, request)
        self._started = True

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["shard"] = {
            "wait_samples": [float(w) for w in self._wait_samples],
            "rehome_guard_until": [
                [sid, self._rehome_guard_until[sid]]
                for sid in sorted(self._rehome_guard_until)
            ],
            "rehome_breaker": self.rehome_breaker.state_dict(),
            "spawned_at_s": self.spawned_at_s,
            "killed_at_s": self.killed_at_s,
            "retired_at_s": self.retired_at_s,
            "completed_frames": self.completed_frames,
            "degraded_frames": self.degraded_frames,
            "lost_frames": self.lost_frames,
            "migrations_in": self.migrations_in,
            "migrations_out": self.migrations_out,
            "rehomed_in": self.rehomed_in,
            "breaker_degraded": self.breaker_degraded,
        }
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        shard = state["shard"]
        self._wait_samples = [float(w) for w in shard["wait_samples"]]
        self._rehome_guard_until = {
            int(sid): float(t) for sid, t in shard["rehome_guard_until"]
        }
        self.rehome_breaker.load_state(shard["rehome_breaker"])
        self.spawned_at_s = (
            None if shard["spawned_at_s"] is None
            else float(shard["spawned_at_s"])
        )
        self.killed_at_s = (
            None if shard["killed_at_s"] is None
            else float(shard["killed_at_s"])
        )
        self.retired_at_s = (
            None if shard["retired_at_s"] is None
            else float(shard["retired_at_s"])
        )
        self.completed_frames = int(shard["completed_frames"])
        self.degraded_frames = int(shard["degraded_frames"])
        self.lost_frames = int(shard["lost_frames"])
        self.migrations_in = int(shard["migrations_in"])
        self.migrations_out = int(shard["migrations_out"])
        self.rehomed_in = int(shard["rehomed_in"])
        self.breaker_degraded = int(shard["breaker_degraded"])
