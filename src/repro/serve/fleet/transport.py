"""Deterministic lossy transport between the fleet router and its shards.

Without this module the fleet routes frames to shards over an implicit
perfect channel and fails shards only through the omniscient
``ShardKill`` control event.  With ``NetConfig.enabled`` every frame
instead travels as a sequence-numbered envelope over a simulated
hub-and-spoke network (router <-> shard links) that can drop, duplicate,
delay/reorder, partition (:class:`~repro.faults.netfaults.PartitionWindow`)
and gray-slow (:class:`~repro.faults.netfaults.GraySlow`) messages — and
the fleet keeps its two core guarantees anyway:

* **exactly-once application** — ack/timeout/retransmit with exponential
  backoff re-sends unacked envelopes; a per-fleet applied-sequence
  registry dedupes every extra copy (link duplicates *and*
  retransmissions whose ack was lost) before it reaches a shard, so the
  frame-conservation ledger still closes exactly: every frame is
  completed once, degraded once, or accounted lost.
* **detection-driven failover** — shards emit heartbeats over the same
  lossy links; a phi-accrual-style detector (elapsed silence over an EMA
  of observed heartbeat intervals) *suspects* silent shards and only
  then re-homes their sessions.  A kill is discovered, never announced.
  False suspicions (partition, gray-slow shard) bounce back: the shard's
  next heartbeat heals it, rejoins it to the ring, and returns the
  sessions the ring still assigns to it, with the existing re-home
  breaker guarding both directions against stampedes.

Determinism and recovery: every random decision is a pure SHA-256 hash
of ``(seed, purpose, link, seq, attempt)`` — there is no RNG state to
checkpoint — and the protocol state (pending envelopes, applied /
exhausted registries, detector estimates, displaced sessions, counters)
round-trips through ``state_dict()`` / ``load_state()`` so a checkpoint
taken mid-partition restores byte-identically.

The transport owns protocol *state and policy*; the
:class:`~repro.serve.fleet.runtime.FleetRuntime` owns the event heap and
topology, dispatching the negative control-event kinds below to
:meth:`FleetTransport.handle`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.faults.netfaults import GraySlow, LinkProfile, PartitionWindow
from repro.obs import NULL_OBS, PID_NET
from repro.serve.request import FrameRequest

# Net control-event kinds.  Negative so the write-ahead journal encoding
# stays disjoint from both the classic control kinds (1..3) and the
# shard-event encoding ((shard_id + 1) * stride + kind >= 4).
K_NET_SEND = -1        #: a frame enters the router (payload: frame dict)
K_NET_DELIVER = -2     #: a data copy reaches its shard
K_NET_ACK = -3         #: an ack reaches the router
K_NET_RETRY = -4       #: retransmit timer for one sequence number
K_NET_HEARTBEAT = -5   #: a shard emits a heartbeat
K_NET_HB_DELIVER = -6  #: a heartbeat reaches the detector
K_NET_DETECT = -7      #: periodic failure-detector evaluation

#: Exhaustion policies: degrade the frame at the router (serve it from
#: the buffered gaze, the client-side fallback) or account it lost.
ON_EXHAUST_POLICIES = ("degrade", "drop")


@dataclass(frozen=True)
class NetConfig:
    """Knobs of the simulated router<->shard network and its protocol."""

    enabled: bool = False
    seed: int = 0
    link: LinkProfile = field(default_factory=LinkProfile)
    partitions: tuple[PartitionWindow, ...] = ()
    gray: tuple[GraySlow, ...] = ()
    #: First retransmit timeout; attempt ``k`` waits
    #: ``ack_timeout_s * backoff_factor**k``.
    ack_timeout_s: float = 5e-3
    backoff_factor: float = 2.0
    max_retransmits: int = 5
    #: Heartbeat emission period per shard.
    heartbeat_s: float = 0.02
    #: Failure-detector evaluation period.
    detect_every_s: float = 0.01
    #: Suspect a shard when its silence exceeds ``phi_threshold`` times
    #: the EMA of its observed heartbeat intervals.
    phi_threshold: float = 4.0
    on_exhaust: str = "degrade"

    def __post_init__(self) -> None:
        from repro.utils.validation import check_positive

        check_positive("ack_timeout_s", self.ack_timeout_s)
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_retransmits < 0:
            raise ValueError(
                f"max_retransmits must be >= 0, got {self.max_retransmits}"
            )
        check_positive("heartbeat_s", self.heartbeat_s)
        check_positive("detect_every_s", self.detect_every_s)
        check_positive("phi_threshold", self.phi_threshold)
        if self.on_exhaust not in ON_EXHAUST_POLICIES:
            raise ValueError(
                f"on_exhaust must be one of {ON_EXHAUST_POLICIES}, "
                f"got {self.on_exhaust!r}"
            )


#: Counter keys, fixed so reports and snapshots enumerate them stably.
COUNTER_NAMES = (
    "data_sent",          # every data transmission (first sends + retransmits)
    "retransmits",
    "dup_injected",       # duplicate copies the link created
    "acks_sent",
    "heartbeats_sent",
    "data_dropped",       # data copies lost to drop draws or partitions
    "acks_dropped",
    "heartbeats_dropped",
    "frames_applied",     # unique sequence numbers applied to a shard
    "frames_deduped",     # extra copies discarded by the applied registry
    "dead_letters",       # copies delivered to a dead shard
    "late_discards",      # copies arriving after their seq was exhausted
    "acked",
    "ack_lost_gaveup",    # retries exhausted but the frame was applied
    "exhausted_degraded",
    "exhausted_lost",
    "suspected",
    "false_suspects",
    "heals",
    "heal_bounce_sessions",
)


def _unit(seed: int, *key) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by the message.

    A pure function of ``(seed, key)`` — the transport carries no RNG
    state, which is what keeps mid-partition checkpoints byte-identical.
    """
    token = ":".join(str(k) for k in ("net", seed, *key))
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


class FleetTransport:
    """Protocol state machine of the lossy router<->shard channel."""

    def __init__(self, config: NetConfig, obs=None):
        self.config = config
        self.obs = obs if obs is not None else NULL_OBS
        #: seq -> {"frame": dict, "attempt": int} awaiting an ack.
        self.pending: dict[int, dict] = {}
        #: Sequence numbers applied to some shard exactly once.
        self.applied: set[int] = set()
        #: Sequence numbers the router gave up on (degraded/lost).
        self.exhausted: set[int] = set()
        #: Shards currently suspected by the failure detector.
        self.suspected: set[int] = set()
        #: shard -> sim time of its last delivered heartbeat (0.0 = start).
        self.last_seen: dict[int, float] = {}
        #: shard -> EMA of observed heartbeat intervals.
        self.mean_interval: dict[int, float] = {}
        #: session -> the suspected shard it was displaced from.
        self.displaced: dict[int, int] = {}
        #: Detector transitions: {"at_s","shard","kind","phi","dead"}.
        self.transitions: list[dict] = []
        #: Kill-to-suspicion latencies of real (dead-shard) failovers.
        self.detect_latencies: list[float] = []
        self.counters: dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    # ------------------------------------------------------------------
    # Channel model
    # ------------------------------------------------------------------
    def register_shard(self, shard_id: int) -> None:
        """Start monitoring a shard (its start counts as a heartbeat)."""
        self.last_seen[shard_id] = 0.0
        self.mean_interval[shard_id] = self.config.heartbeat_s

    def partitioned(self, shard_id: int, t: float) -> bool:
        return any(w.covers(shard_id, t) for w in self.config.partitions)

    def _gray_factor(self, shard_id: int, t: float) -> float:
        factor = 1.0
        for window in self.config.gray:
            if window.covers(shard_id, t):
                factor *= window.delay_factor
        return factor

    def _delay(self, shard_id: int, t: float, *key) -> float:
        link = self.config.link
        jitter = (
            link.jitter_s * _unit(self.config.seed, *key)
            if link.jitter_s > 0
            else 0.0
        )
        return (link.delay_s + jitter) * self._gray_factor(shard_id, t)

    def _dropped(self, shard_id: int, t: float, *key) -> bool:
        if self.partitioned(shard_id, t):
            return True
        rate = self.config.link.drop_rate
        return rate > 0 and _unit(self.config.seed, *key) < rate

    # ------------------------------------------------------------------
    # Obs plumbing
    # ------------------------------------------------------------------
    def _instant(self, name: str, now: float, args: dict) -> None:
        if self.obs.enabled:
            self.obs.tracer.instant(
                name, now, cat="net", pid=PID_NET, args=args
            )

    def _count(self, metric: str, n: int = 1) -> None:
        if self.obs.enabled:
            self.obs.metrics.counter(metric).inc(n)

    # ------------------------------------------------------------------
    # Event handlers (dispatched by FleetRuntime.step)
    # ------------------------------------------------------------------
    def handle(self, fleet, kind: int, payload, now: float) -> None:
        if kind == K_NET_SEND:
            self._transmit(fleet, payload, 0, now)
        elif kind == K_NET_DELIVER:
            self._on_deliver(fleet, payload, now)
        elif kind == K_NET_ACK:
            self._on_ack(payload, now)
        elif kind == K_NET_RETRY:
            self._on_retry(fleet, payload, now)
        elif kind == K_NET_HEARTBEAT:
            self._on_heartbeat(fleet, payload, now)
        elif kind == K_NET_HB_DELIVER:
            self._on_hb_deliver(fleet, payload, now)
        elif kind == K_NET_DETECT:
            self._on_detect(fleet, now)
        else:  # pragma: no cover - guarded by the kind<0 dispatch
            raise ValueError(f"unknown net event kind {kind}")

    def _transmit(self, fleet, frame: dict, attempt: int, now: float) -> None:
        """Send one envelope copy toward the session's *current* shard.

        Retransmissions re-resolve the target, which is how in-flight
        frames of a re-homed session reroute to the surviving shard.
        """
        seq = int(frame["seq"])
        shard_id = fleet._session_shard[int(frame["session_id"])]
        self.pending[seq] = {"frame": frame, "attempt": attempt}
        self.counters["data_sent"] += 1
        timeout = (
            self.config.ack_timeout_s * self.config.backoff_factor**attempt
        )
        fleet._push_control(now + timeout, K_NET_RETRY, {"seq": seq})
        if self._dropped(shard_id, now, "drop", shard_id, seq, attempt):
            self.counters["data_dropped"] += 1
            self._instant(
                "net.drop", now,
                {"seq": seq, "shard": shard_id, "attempt": attempt},
            )
            self._count("net_data_dropped_total")
            return
        delay = self._delay(shard_id, now, "delay", shard_id, seq, attempt)
        envelope = {"frame": frame, "shard": shard_id, "attempt": attempt,
                    "dup": 0}
        fleet._push_control(now + delay, K_NET_DELIVER, envelope)
        if (
            self.config.link.dup_rate > 0
            and _unit(self.config.seed, "dup", shard_id, seq, attempt)
            < self.config.link.dup_rate
        ):
            self.counters["dup_injected"] += 1
            dup_delay = self._delay(
                shard_id, now, "dupdelay", shard_id, seq, attempt
            )
            fleet._push_control(
                now + dup_delay, K_NET_DELIVER, {**envelope, "dup": 1}
            )
            self._instant(
                "net.dup_injected", now, {"seq": seq, "shard": shard_id}
            )
            self._count("net_dup_injected_total")

    def _on_deliver(self, fleet, payload: dict, now: float) -> None:
        """One data copy reaches its shard: apply exactly once."""
        frame = payload["frame"]
        seq = int(frame["seq"])
        shard_id = int(payload["shard"])
        shard = fleet.shards[shard_id]
        if not shard.alive:
            self.counters["dead_letters"] += 1
            return
        if seq in self.exhausted:
            # The router already resolved this frame (degraded or lost);
            # applying a late copy would double-account it.
            self.counters["late_discards"] += 1
            self._instant(
                "net.late_discard", now, {"seq": seq, "shard": shard_id}
            )
            return
        if seq in self.applied:
            self.counters["frames_deduped"] += 1
            self._instant(
                "net.dedupe", now,
                {"seq": seq, "shard": shard_id, "dup": payload["dup"]},
            )
            self._count("net_frames_deduped_total")
            # Re-ack so a lost first ack stops triggering retransmits.
            self._send_ack(fleet, shard_id, seq, payload, now)
            return
        self.applied.add(seq)
        self.counters["frames_applied"] += 1
        shard._on_arrival(FrameRequest.from_dict(frame), now)
        self._send_ack(fleet, shard_id, seq, payload, now)

    def _send_ack(
        self, fleet, shard_id: int, seq: int, payload: dict, now: float
    ) -> None:
        self.counters["acks_sent"] += 1
        key = ("ackdrop", shard_id, seq, payload["attempt"], payload["dup"])
        if self._dropped(shard_id, now, *key):
            self.counters["acks_dropped"] += 1
            self._count("net_acks_dropped_total")
            return
        delay = self._delay(
            shard_id, now,
            "ackdelay", shard_id, seq, payload["attempt"], payload["dup"],
        )
        fleet._push_control(now + delay, K_NET_ACK, {"seq": seq})

    def _on_ack(self, payload: dict, now: float) -> None:
        if self.pending.pop(int(payload["seq"]), None) is not None:
            self.counters["acked"] += 1

    def _on_retry(self, fleet, payload: dict, now: float) -> None:
        """Retransmit timer: back off and re-send, or give up."""
        seq = int(payload["seq"])
        entry = self.pending.get(seq)
        if entry is None:
            return  # acked (or resolved) before the timer fired
        attempt = int(entry["attempt"]) + 1
        if attempt > self.config.max_retransmits:
            del self.pending[seq]
            if seq in self.applied:
                # Applied but every ack was lost: the frame is fine, the
                # router just stops asking.
                self.counters["ack_lost_gaveup"] += 1
                return
            self.exhausted.add(seq)
            fleet._net_exhaust(entry["frame"], now)
            return
        self.counters["retransmits"] += 1
        self._instant(
            "net.retransmit", now, {"seq": seq, "attempt": attempt}
        )
        self._count("net_retransmits_total")
        self._transmit(fleet, entry["frame"], attempt, now)

    def _on_heartbeat(self, fleet, payload: dict, now: float) -> None:
        shard_id = int(payload["shard"])
        if not fleet.shards[shard_id].alive:
            return  # dead shards are silent — that IS the failure signal
        self.counters["heartbeats_sent"] += 1
        tick = int(payload["i"])
        if self._dropped(shard_id, now, "hbdrop", shard_id, tick):
            self.counters["heartbeats_dropped"] += 1
            return
        delay = self._delay(shard_id, now, "hbdelay", shard_id, tick)
        fleet._push_control(
            now + delay, K_NET_HB_DELIVER, {"shard": shard_id}
        )

    def _on_hb_deliver(self, fleet, payload: dict, now: float) -> None:
        shard_id = int(payload["shard"])
        last = self.last_seen.get(shard_id, 0.0)
        interval = now - last
        if interval > 0:
            mean = self.mean_interval.get(shard_id, self.config.heartbeat_s)
            self.mean_interval[shard_id] = 0.8 * mean + 0.2 * interval
        self.last_seen[shard_id] = now
        if shard_id in self.suspected:
            fleet._net_heal(shard_id, now)

    def _on_detect(self, fleet, now: float) -> None:
        """Periodic phi evaluation over every monitored shard."""
        for shard_id in sorted(self.last_seen):
            if shard_id in self.suspected:
                continue
            if fleet.shards[shard_id].retired_at_s is not None:
                continue
            mean = max(
                self.mean_interval.get(shard_id, self.config.heartbeat_s),
                1e-9,
            )
            phi = (now - self.last_seen[shard_id]) / mean
            if phi >= self.config.phi_threshold:
                fleet._net_suspect(shard_id, phi, now)

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "pending": [
                [seq, dict(self.pending[seq])]
                for seq in sorted(self.pending)
            ],
            "applied": sorted(self.applied),
            "exhausted": sorted(self.exhausted),
            "suspected": sorted(self.suspected),
            "last_seen": [
                [sid, self.last_seen[sid]] for sid in sorted(self.last_seen)
            ],
            "mean_interval": [
                [sid, self.mean_interval[sid]]
                for sid in sorted(self.mean_interval)
            ],
            "displaced": [
                [sid, self.displaced[sid]] for sid in sorted(self.displaced)
            ],
            "transitions": [dict(t) for t in self.transitions],
            "detect_latencies": list(self.detect_latencies),
            "counters": dict(self.counters),
        }

    def load_state(self, state: dict) -> None:
        self.pending = {
            int(seq): {"frame": dict(e["frame"]), "attempt": int(e["attempt"])}
            for seq, e in state["pending"]
        }
        self.applied = {int(s) for s in state["applied"]}
        self.exhausted = {int(s) for s in state["exhausted"]}
        self.suspected = {int(s) for s in state["suspected"]}
        self.last_seen = {int(s): float(t) for s, t in state["last_seen"]}
        self.mean_interval = {
            int(s): float(v) for s, v in state["mean_interval"]
        }
        self.displaced = {int(s): int(h) for s, h in state["displaced"]}
        self.transitions = [dict(t) for t in state["transitions"]]
        self.detect_latencies = [float(x) for x in state["detect_latencies"]]
        self.counters = {name: 0 for name in COUNTER_NAMES}
        self.counters.update(
            {str(k): int(v) for k, v in state["counters"].items()}
        )
