"""Geometric eye model: mapping gaze direction to image-plane appearance.

A near-eye camera in a VR HMD sits at a fixed pose relative to the eye
(the paper exploits exactly this to justify analytical cropping, §4.2).
Under that fixed pose, the pupil's image-plane position is a smooth,
nearly-affine function of the gaze angles, and the pupil ellipse
foreshortens as the gaze turns away from the camera axis.  This module
captures that mapping with a small number of per-participant parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import default_rng


@dataclass(frozen=True)
class EyeAppearance:
    """Per-participant anatomical / rig parameters.

    Attributes:
        center_x, center_y: image-plane position (pixels) of the pupil when
            gaze is straight ahead; encodes camera mounting offset.
        gain_x, gain_y: pixels of pupil travel per degree of gaze.
        pupil_radius: base pupil radius in pixels.
        iris_radius: iris radius in pixels.
        eye_width, eye_height: palpebral-fissure half-axes in pixels.
        iris_shade, skin_shade, sclera_shade: base intensities in [0, 1].
        lid_droop: fraction of the upper iris covered by the relaxed eyelid.
        camera_tilt_deg: off-axis camera angle; increases foreshortening.
    """

    center_x: float
    center_y: float
    gain_x: float
    gain_y: float
    pupil_radius: float
    iris_radius: float
    eye_width: float
    eye_height: float
    iris_shade: float
    skin_shade: float
    sclera_shade: float
    lid_droop: float
    camera_tilt_deg: float

    @staticmethod
    def sample(rng, width: int, height: int) -> "EyeAppearance":
        """Draw a plausible participant for a ``width``x``height`` sensor."""
        rng = default_rng(rng)
        scale = min(width, height) / 120.0
        # Placement variance reflects a rigidly-mounted HMD eye camera:
        # the rest position shifts by only a few pixels across users
        # (IPD/face-shape differences), and the pixels-per-degree gain by
        # under ten percent (eyeball-radius variation).  These two spreads
        # set the cross-user error floor of appearance-based trackers.
        return EyeAppearance(
            center_x=width / 2 + rng.normal(0, 0.015 * width),
            center_y=height / 2 + rng.normal(0, 0.02 * height),
            gain_x=(1.35 + rng.uniform(-0.10, 0.10)) * scale,
            gain_y=(1.10 + rng.uniform(-0.08, 0.08)) * scale,
            pupil_radius=(9.0 + rng.uniform(-2.0, 4.0)) * scale,
            iris_radius=(26.0 + rng.uniform(-4.0, 6.0)) * scale,
            eye_width=(52.0 + rng.uniform(-6.0, 8.0)) * scale,
            eye_height=(26.0 + rng.uniform(-5.0, 6.0)) * scale,
            iris_shade=float(rng.uniform(0.30, 0.52)),
            skin_shade=float(rng.uniform(0.62, 0.80)),
            sclera_shade=float(rng.uniform(0.80, 0.92)),
            lid_droop=float(rng.uniform(0.0, 0.30)),
            camera_tilt_deg=float(rng.uniform(0.0, 12.0)),
        )


@dataclass(frozen=True)
class PupilPose:
    """Image-plane pupil geometry for one gaze sample."""

    x: float
    y: float
    radius_major: float
    radius_minor: float
    orientation_rad: float


class EyeGeometry:
    """Projects gaze angles to image-plane pupil/iris geometry."""

    def __init__(self, appearance: EyeAppearance):
        self.appearance = appearance

    def pupil_pose(self, gaze_deg: np.ndarray, dilation: float = 1.0) -> PupilPose:
        """Pupil ellipse for gaze ``(theta_x, theta_y)`` in degrees.

        The projection uses the tangent mapping of Eq. 1's display model —
        near-linear within ±25 degrees — plus cosine foreshortening of the
        pupil disc as gaze departs from the (possibly tilted) camera axis.
        """
        a = self.appearance
        theta_x, theta_y = float(gaze_deg[0]), float(gaze_deg[1])
        # Tangent projection, normalized so the small-angle slope equals the
        # per-degree gain.
        x = a.center_x + a.gain_x * math.degrees(math.tan(math.radians(theta_x)))
        y = a.center_y + a.gain_y * math.degrees(math.tan(math.radians(theta_y)))
        off_axis = math.radians(
            math.hypot(theta_x, theta_y + a.camera_tilt_deg)
        )
        squash = max(0.35, math.cos(off_axis))
        radius = a.pupil_radius * float(np.clip(dilation, 0.5, 1.8))
        orientation = math.atan2(theta_y + a.camera_tilt_deg, theta_x) + math.pi / 2
        return PupilPose(
            x=x,
            y=y,
            radius_major=radius,
            radius_minor=radius * squash,
            orientation_rad=orientation,
        )

    def iris_center(self, gaze_deg: np.ndarray) -> tuple[float, float]:
        """Iris center tracks the pupil center in this projection."""
        pose = self.pupil_pose(gaze_deg)
        return pose.x, pose.y

    def gaze_from_pupil(self, x: float, y: float) -> np.ndarray:
        """Inverse mapping (used by the model-based baselines).

        Inverts the tangent projection; exact when the forward model's
        dilation/foreshortening do not move the center (they do not).
        """
        a = self.appearance
        tx = math.atan(math.radians((x - a.center_x) / a.gain_x))
        ty = math.atan(math.radians((y - a.center_y) / a.gain_y))
        return np.array([math.degrees(tx), math.degrees(ty)])
