"""Oculomotor sequence model.

Generates gaze trajectories with the statistics §2.1 of the paper relies
on: alternating fixations and saccades (one to three saccades per second,
each lasting 20–200 ms), occasional smooth pursuit, blinks, fixational
tremor/drift, and a ~50 ms post-saccadic low-acuity period.  Saccade
kinematics follow the main sequence (duration grows with amplitude) with
a minimum-jerk position profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eye.events import MovementType, post_saccade_mask
from repro.utils.rng import RngMixin
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class OculomotorConfig:
    """Behavioural parameters of the gaze generator.

    Defaults follow the literature values quoted in §2.1: fixations of
    150–600 ms, saccade durations from the main sequence
    ``duration_ms = 2.2 * amplitude_deg + 21`` (Robinson-style fit),
    blinks every ~4 s, and a 50 ms post-saccadic period.
    """

    fps: float = 100.0
    field_deg: float = 22.0
    fixation_duration_s: tuple[float, float] = (0.15, 0.6)
    saccade_amplitude_deg: tuple[float, float] = (2.0, 25.0)
    main_sequence_slope_ms: float = 2.2
    main_sequence_intercept_ms: float = 21.0
    pursuit_probability: float = 0.08
    pursuit_duration_s: tuple[float, float] = (0.4, 1.2)
    pursuit_speed_deg_s: tuple[float, float] = (5.0, 20.0)
    blink_rate_hz: float = 0.25
    blink_duration_s: tuple[float, float] = (0.1, 0.3)
    squint_probability: float = 0.22
    squint_level: tuple[float, float] = (0.36, 0.70)
    normal_level: tuple[float, float] = (0.82, 1.0)
    openness_segment_s: tuple[float, float] = (0.5, 2.0)
    tremor_std_deg: float = 0.04
    drift_speed_deg_s: float = 0.35
    post_saccade_s: float = 0.05

    def __post_init__(self) -> None:
        check_positive("fps", self.fps)
        check_positive("field_deg", self.field_deg)
        check_in_range("pursuit_probability", self.pursuit_probability, 0.0, 1.0)


@dataclass
class GazeTrack:
    """A sampled gaze trajectory with per-frame annotations."""

    gaze_deg: np.ndarray  # (T, 2)
    labels: np.ndarray  # (T,) MovementType values
    openness: np.ndarray  # (T,) eyelid opening in [0, 1]
    velocity_deg_s: np.ndarray  # (T,)
    fps: float
    post_saccade: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        n = self.gaze_deg.shape[0]
        for name, arr in (
            ("labels", self.labels),
            ("openness", self.openness),
            ("velocity_deg_s", self.velocity_deg_s),
        ):
            if arr.shape[0] != n:
                raise ValueError(f"{name} length {arr.shape[0]} != {n}")
        window = max(1, int(round(0.05 * self.fps)))
        self.post_saccade = post_saccade_mask(self.labels, window)

    def __len__(self) -> int:
        return self.gaze_deg.shape[0]

    def copy_with(
        self,
        gaze_deg: "np.ndarray | None" = None,
        labels: "np.ndarray | None" = None,
        openness: "np.ndarray | None" = None,
        velocity_deg_s: "np.ndarray | None" = None,
    ) -> "GazeTrack":
        """A variant of this track with some arrays replaced (the fault
        injectors' entry point).  When the gaze changes and no velocity is
        supplied, velocities are recomputed from the new positions."""
        new_gaze = self.gaze_deg if gaze_deg is None else np.asarray(gaze_deg)
        if velocity_deg_s is None:
            if gaze_deg is None:
                velocity = self.velocity_deg_s
            else:
                velocity = velocities_from_gaze(new_gaze, 1.0 / self.fps)
        else:
            velocity = np.asarray(velocity_deg_s)
        return GazeTrack(
            gaze_deg=new_gaze,
            labels=self.labels if labels is None else np.asarray(labels),
            openness=self.openness if openness is None else np.asarray(openness),
            velocity_deg_s=velocity,
            fps=self.fps,
        )


def velocities_from_gaze(gaze: np.ndarray, dt: float) -> np.ndarray:
    """Per-frame angular speed from a gaze trajectory (first frame 0)."""
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    deltas = np.linalg.norm(np.diff(gaze, axis=0), axis=1) / dt
    return np.concatenate([[0.0], deltas])


def _minimum_jerk(n: int) -> np.ndarray:
    """Minimum-jerk displacement profile s(tau) in [0, 1] over ``n`` samples."""
    tau = np.linspace(0.0, 1.0, n)
    return 10 * tau**3 - 15 * tau**4 + 6 * tau**5


class OculomotorModel(RngMixin):
    """Stochastic generator of gaze trajectories."""

    def __init__(self, config: "OculomotorConfig | None" = None, seed=None):
        super().__init__(seed)
        self.config = config or OculomotorConfig()

    def generate(self, n_frames: int) -> GazeTrack:
        """Generate ``n_frames`` of gaze behaviour starting from a random
        fixation point."""
        if n_frames <= 0:
            raise ValueError(f"n_frames must be positive, got {n_frames}")
        cfg = self.config
        dt = 1.0 / cfg.fps

        gaze = np.zeros((n_frames, 2))
        labels = np.zeros(n_frames, dtype=np.int64)
        openness = np.ones(n_frames)

        position = self.rng.uniform(-cfg.field_deg / 2, cfg.field_deg / 2, size=2)
        t = 0
        while t < n_frames:
            roll = self.rng.random()
            if roll < cfg.pursuit_probability:
                t, position = self._emit_pursuit(gaze, labels, position, t, n_frames)
            else:
                t, position = self._emit_fixation(gaze, labels, position, t, n_frames)
                if t < n_frames:
                    t, position = self._emit_saccade(gaze, labels, position, t, n_frames)

        self._baseline_openness(openness, n_frames)
        self._overlay_blinks(openness, n_frames)
        velocity = self._velocities(gaze, dt)
        # A closed eye yields no usable gaze signal; keep the nominal gaze
        # label but annotate the frame as a blink.
        labels[openness < 0.2] = MovementType.BLINK
        return GazeTrack(
            gaze_deg=gaze,
            labels=labels,
            openness=openness,
            velocity_deg_s=velocity,
            fps=cfg.fps,
        )

    # ------------------------------------------------------------------
    def _emit_fixation(self, gaze, labels, position, t, n_frames):
        cfg = self.config
        duration = self.rng.uniform(*cfg.fixation_duration_s)
        n = max(1, int(round(duration * cfg.fps)))
        stop = min(t + n, n_frames)
        count = stop - t
        drift_dir = self.rng.normal(size=2)
        drift_dir /= np.linalg.norm(drift_dir) + 1e-9
        drift = (
            np.outer(np.arange(count), drift_dir)
            * cfg.drift_speed_deg_s
            / cfg.fps
        )
        tremor = self.rng.normal(0.0, cfg.tremor_std_deg, size=(count, 2))
        gaze[t:stop] = position + drift + tremor
        labels[t:stop] = MovementType.FIXATION
        new_position = gaze[stop - 1].copy() if count else position
        return stop, new_position

    def _emit_saccade(self, gaze, labels, position, t, n_frames):
        cfg = self.config
        target = self._sample_target(position)
        amplitude = float(np.linalg.norm(target - position))
        duration_ms = cfg.main_sequence_intercept_ms + cfg.main_sequence_slope_ms * amplitude
        n = max(2, int(round(duration_ms / 1000.0 * cfg.fps)))
        stop = min(t + n, n_frames)
        count = stop - t
        profile = _minimum_jerk(n)[:count]
        gaze[t:stop] = position + np.outer(profile, target - position)
        labels[t:stop] = MovementType.SACCADE
        return stop, (target if stop == t + n else gaze[stop - 1].copy())

    def _emit_pursuit(self, gaze, labels, position, t, n_frames):
        cfg = self.config
        duration = self.rng.uniform(*cfg.pursuit_duration_s)
        speed = self.rng.uniform(*cfg.pursuit_speed_deg_s)
        n = max(2, int(round(duration * cfg.fps)))
        stop = min(t + n, n_frames)
        count = stop - t
        direction = self.rng.normal(size=2)
        direction /= np.linalg.norm(direction) + 1e-9
        path = position + np.outer(np.arange(count) * speed / cfg.fps, direction)
        limit = cfg.field_deg / 2
        path = np.clip(path, -limit, limit)
        gaze[t:stop] = path
        labels[t:stop] = MovementType.PURSUIT
        return stop, gaze[stop - 1].copy() if count else position

    def _sample_target(self, position: np.ndarray) -> np.ndarray:
        cfg = self.config
        limit = cfg.field_deg / 2
        for _ in range(32):
            amplitude = self.rng.uniform(*cfg.saccade_amplitude_deg)
            angle = self.rng.uniform(0, 2 * np.pi)
            target = position + amplitude * np.array([np.cos(angle), np.sin(angle)])
            if np.all(np.abs(target) <= limit):
                return target
        return np.clip(target, -limit, limit)

    def _baseline_openness(self, openness: np.ndarray, n_frames: int) -> None:
        """Slow lid-level variation: mostly wide open, with occasional
        sustained squints.  These partially-occluded stretches are the
        long-tail frames that separate the gaze trackers (Fig. 8a)."""
        cfg = self.config
        t = 0
        while t < n_frames:
            duration = self.rng.uniform(*cfg.openness_segment_s)
            stop = min(t + max(1, int(round(duration * cfg.fps))), n_frames)
            if self.rng.random() < cfg.squint_probability:
                level = self.rng.uniform(*cfg.squint_level)
            else:
                level = self.rng.uniform(*cfg.normal_level)
            openness[t:stop] = level
            t = stop

    def _overlay_blinks(self, openness: np.ndarray, n_frames: int) -> None:
        cfg = self.config
        expected = cfg.blink_rate_hz * n_frames / cfg.fps
        n_blinks = self.rng.poisson(expected)
        for _ in range(n_blinks):
            start = int(self.rng.integers(0, n_frames))
            duration = self.rng.uniform(*cfg.blink_duration_s)
            n = max(2, int(round(duration * cfg.fps)))
            stop = min(start + n, n_frames)
            count = stop - start
            # Triangular close/open profile.
            half = count / 2.0
            profile = 1.0 - np.minimum(np.arange(count) + 1, count - np.arange(count)) / half
            openness[start:stop] = np.minimum(openness[start:stop], np.clip(profile, 0.0, 1.0))

    @staticmethod
    def _velocities(gaze: np.ndarray, dt: float) -> np.ndarray:
        return velocities_from_gaze(gaze, dt)
