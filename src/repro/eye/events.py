"""Eye-movement event taxonomy and label utilities.

OpenEDS-2020 annotates each frame with its movement type; the synthetic
dataset reproduces that schema.  The system model (Eq. 6/7) additionally
needs the occurrence probabilities of saccade / reuse / fresh-prediction
events, computed here from label streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class MovementType(enum.IntEnum):
    """Per-frame eye-movement annotation."""

    FIXATION = 0
    SACCADE = 1
    PURSUIT = 2
    BLINK = 3


@dataclass(frozen=True)
class EventSegment:
    """A maximal run of frames sharing one movement type."""

    kind: MovementType
    start: int
    stop: int  # exclusive

    @property
    def length(self) -> int:
        return self.stop - self.start


def segments_from_labels(labels: np.ndarray) -> list[EventSegment]:
    """Split a label stream into maximal constant-type segments."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return []
    change = np.flatnonzero(np.diff(labels)) + 1
    bounds = np.concatenate([[0], change, [labels.size]])
    return [
        EventSegment(MovementType(int(labels[a])), int(a), int(b))
        for a, b in zip(bounds[:-1], bounds[1:])
    ]


@dataclass(frozen=True)
class EventMix:
    """Occurrence probabilities of the three POLONet execution paths.

    ``p_saccade + p_reuse + p_predict == 1``; these weight the latency terms
    of Eqs. 6 and 7.
    """

    p_saccade: float
    p_reuse: float
    p_predict: float

    def __post_init__(self) -> None:
        total = self.p_saccade + self.p_reuse + self.p_predict
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"event probabilities must sum to 1, got {total}")

    @staticmethod
    def from_counts(n_saccade: int, n_reuse: int, n_predict: int) -> "EventMix":
        total = n_saccade + n_reuse + n_predict
        if total <= 0:
            raise ValueError("at least one event is required")
        return EventMix(n_saccade / total, n_reuse / total, n_predict / total)


def saccade_fraction(labels: np.ndarray) -> float:
    """Fraction of frames annotated as saccadic."""
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ValueError("empty label stream")
    return float(np.mean(labels == MovementType.SACCADE))


def post_saccade_mask(labels: np.ndarray, window: int) -> np.ndarray:
    """Flag the ``window`` frames following each saccade end (the
    post-saccadic low-acuity period, ~50 ms in the paper)."""
    labels = np.asarray(labels)
    mask = np.zeros(labels.size, dtype=bool)
    in_saccade = labels == MovementType.SACCADE
    for i in range(1, labels.size):
        if in_saccade[i - 1] and not in_saccade[i]:
            mask[i : i + window] = True
    mask &= ~in_saccade
    return mask
