"""Loader for externally-recorded eye datasets (real OpenEDS-style data).

The synthetic substrate stands in for OpenEDS-2020, but a user who holds
the real dataset (or any near-eye recording) can bring it through this
adapter.  Expected on-disk layout, one directory per participant::

    <root>/<participant_id>/
        frames.npy    # (T, H, W) uint8 or float images
        gaze.csv      # per-frame: theta_x_deg,theta_y_deg
        labels.csv    # per-frame movement type (0=fixation,1=saccade,
                      #   2=pursuit,3=blink); optional, defaults fixation
        meta.json     # optional: {"fps": 100.0}

PNG decoding is intentionally out of scope (no imaging dependency);
convert recordings to ``frames.npy`` with any tool once.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.eye.dataset import EyeDataset, EyeSequence
from repro.eye.events import MovementType, post_saccade_mask

DEFAULT_FPS = 100.0


def _read_csv_floats(path: Path, n_columns: int) -> np.ndarray:
    """Parse a headerless (or single-header-line) numeric CSV."""
    rows = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            parts = line.split(",")
            try:
                values = [float(p) for p in parts]
            except ValueError:
                if line_no == 0:
                    continue  # header line
                raise ValueError(f"{path}: non-numeric row {line_no}: {line!r}")
            if len(values) != n_columns:
                raise ValueError(
                    f"{path}: expected {n_columns} columns, got {len(values)}"
                )
            rows.append(values)
    if not rows:
        raise ValueError(f"{path}: no data rows")
    return np.asarray(rows, dtype=np.float64)


def load_sequence(directory: "str | os.PathLike", participant: int) -> EyeSequence:
    """Load one participant directory into an :class:`EyeSequence`."""
    path = Path(directory)
    frames_path = path / "frames.npy"
    if not frames_path.exists():
        raise FileNotFoundError(f"missing {frames_path}")
    images = np.load(frames_path)
    if images.ndim != 3:
        raise ValueError(f"{frames_path}: expected (T, H, W), got {images.shape}")
    if images.dtype == np.uint8:
        images = images.astype(np.float32) / 255.0
    else:
        images = images.astype(np.float32)
        if images.max() > 1.0 + 1e-6:
            raise ValueError(f"{frames_path}: float frames must be in [0, 1]")

    gaze = _read_csv_floats(path / "gaze.csv", 2)
    if len(gaze) != len(images):
        raise ValueError(
            f"{path}: {len(images)} frames but {len(gaze)} gaze rows"
        )

    labels_path = path / "labels.csv"
    if labels_path.exists():
        labels = _read_csv_floats(labels_path, 1).astype(np.int64)[:, 0]
        if len(labels) != len(images):
            raise ValueError(f"{path}: label count mismatch")
        valid = {int(m) for m in MovementType}
        if not set(np.unique(labels)).issubset(valid):
            raise ValueError(f"{path}: unknown movement labels")
    else:
        labels = np.zeros(len(images), dtype=np.int64)

    meta_path = path / "meta.json"
    fps = DEFAULT_FPS
    if meta_path.exists():
        with open(meta_path, encoding="utf-8") as handle:
            fps = float(json.load(handle).get("fps", DEFAULT_FPS))

    dt = 1.0 / fps
    velocity = np.concatenate(
        [[0.0], np.linalg.norm(np.diff(gaze, axis=0), axis=1) / dt]
    )
    window = max(1, int(round(0.05 * fps)))
    return EyeSequence(
        participant=participant,
        images=images,
        gaze_deg=gaze,
        labels=labels,
        openness=np.where(labels == MovementType.BLINK, 0.0, 1.0),
        velocity_deg_s=velocity,
        post_saccade=post_saccade_mask(labels, window),
        fps=fps,
    )


def load_dataset(root: "str | os.PathLike") -> EyeDataset:
    """Load every participant directory under ``root``."""
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"{root} is not a directory")
    sequences = []
    for i, child in enumerate(sorted(p for p in root.iterdir() if p.is_dir())):
        sequences.append(load_sequence(child, participant=i))
    if not sequences:
        raise ValueError(f"{root}: no participant directories found")
    return EyeDataset(sequences)
