"""Procedural near-eye frame synthesis.

Generates monochrome infrared-style eye images with the intensity
ordering the POLO pipeline depends on (pupil darkest, then iris, then
skin, then sclera; §4.2), plus the nuisances that create long-tail gaze
errors: eyelid occlusion, blinks, eyelashes, corneal glints, vignetting,
and sensor noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.eye.eyeball import EyeAppearance, EyeGeometry
from repro.utils.rng import default_rng
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class RenderConfig:
    """Sensor and image-formation settings.

    The default 160x120 resolution keeps pure-python experiments fast; the
    OpenEDS sensor (640x400) is available by passing those dimensions.
    """

    width: int = 160
    height: int = 120
    noise_std: float = 0.02
    vignette_strength: float = 0.25
    glint_count: int = 2
    eyelash_count: int = 9
    max_shadow_patches: int = 3

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("height", self.height)
        check_in_range("noise_std", self.noise_std, 0.0, 0.5)
        check_in_range("vignette_strength", self.vignette_strength, 0.0, 1.0)
        if self.max_shadow_patches < 0:
            raise ValueError("max_shadow_patches must be non-negative")


class NearEyeRenderer:
    """Renders labelled near-eye frames for one participant."""

    def __init__(
        self,
        appearance: EyeAppearance,
        config: "RenderConfig | None" = None,
        seed=None,
    ):
        self.appearance = appearance
        self.config = config or RenderConfig()
        self.geometry = EyeGeometry(appearance)
        self._rng = default_rng(seed)
        h, w = self.config.height, self.config.width
        self._yy, self._xx = np.mgrid[0:h, 0:w].astype(np.float64)
        self._vignette = self._make_vignette()
        self._iris_texture_phase = self._rng.uniform(0, 2 * math.pi)
        self._lash_params = self._sample_lashes()
        self._shadow_patches = self._sample_shadow_patches()

    # ------------------------------------------------------------------
    def render(
        self,
        gaze_deg: np.ndarray,
        openness: float = 1.0,
        dilation: float = 1.0,
        motion_blur: float = 0.0,
    ) -> np.ndarray:
        """Render one frame.

        Args:
            gaze_deg: (2,) gaze angles in degrees.
            openness: eyelid opening in [0, 1]; 0 is a full blink.
            dilation: pupil dilation multiplier.
            motion_blur: blur extent in pixels along x (saccadic frames).

        Returns:
            (H, W) float image in [0, 1].
        """
        openness = float(np.clip(openness, 0.0, 1.0))
        a = self.appearance
        frame = np.full((self.config.height, self.config.width), a.skin_shade)
        frame += 0.03 * self._smooth_noise()
        frame = self._draw_shadow_patches(frame)

        pose = self.geometry.pupil_pose(gaze_deg, dilation)
        eye_mask = self._eye_opening_mask(openness)

        # Sclera within the opening.
        frame = np.where(eye_mask, a.sclera_shade + 0.02 * self._smooth_noise(), frame)

        if openness > 0.05:
            iris = self._disc(pose.x, pose.y, a.iris_radius, squash=pose.radius_minor / pose.radius_major)
            iris_tex = a.iris_shade + 0.05 * np.sin(
                6.0 * np.arctan2(self._yy - pose.y, self._xx - pose.x)
                + self._iris_texture_phase
            )
            frame = np.where(eye_mask & iris, iris_tex, frame)

            pupil = self._ellipse(
                pose.x, pose.y, pose.radius_major, pose.radius_minor, pose.orientation_rad
            )
            frame = np.where(eye_mask & pupil, 0.05, frame)

            for gi in range(self.config.glint_count):
                gx = pose.x + (8.0 + 4.0 * gi) * math.cos(1.1 + 2.2 * gi)
                gy = pose.y + (6.0 + 3.0 * gi) * math.sin(0.7 + 2.2 * gi)
                glint = self._disc(gx, gy, 1.6)
                frame = np.where(eye_mask & glint, 0.98, frame)

        frame = self._draw_eyelids(frame, openness)
        frame = self._draw_lashes(frame, openness)

        if motion_blur > 0.5:
            frame = self._blur_x(frame, int(round(motion_blur)))

        frame *= self._vignette
        frame += self._rng.normal(0.0, self.config.noise_std, frame.shape)
        return np.clip(frame, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _disc(self, cx: float, cy: float, radius: float, squash: float = 1.0) -> np.ndarray:
        dx = self._xx - cx
        dy = (self._yy - cy) / max(squash, 1e-3)
        return dx * dx + dy * dy <= radius * radius

    def _ellipse(
        self, cx: float, cy: float, a_r: float, b_r: float, angle: float
    ) -> np.ndarray:
        dx = self._xx - cx
        dy = self._yy - cy
        cos_t, sin_t = math.cos(angle), math.sin(angle)
        u = dx * cos_t + dy * sin_t
        v = -dx * sin_t + dy * cos_t
        return (u / max(a_r, 1e-3)) ** 2 + (v / max(b_r, 1e-3)) ** 2 <= 1.0

    def _eye_opening_mask(self, openness: float) -> np.ndarray:
        """Almond-shaped palpebral fissure.

        Closing is upper-lid dominant, as in real blinks: the top boundary
        descends with (1 - openness) while the lower lid barely moves.
        This is what creates partial pupil occlusion — and therefore the
        biased-centroid failure mode of segmentation-based gaze trackers —
        whenever the gaze is upward and the lid is low.
        """
        a = self.appearance
        if openness < 0.04:
            return np.zeros_like(self._xx, dtype=bool)
        dx = (self._xx - a.center_x) / a.eye_width
        dy = (self._yy - a.center_y) / max(a.eye_height, 1e-3)
        opening = dx * dx + dy * dy <= 1.0
        # Upper lid line: from the opening's top (openness 1) down past its
        # bottom (openness 0); droop keeps the relaxed lid slightly low.
        descent = (1.0 - openness) * 2.0 + a.lid_droop * 0.5
        lid_line = a.center_y + a.eye_height * (descent - 1.0)
        return opening & (self._yy >= lid_line)

    def _draw_eyelids(self, frame: np.ndarray, openness: float) -> np.ndarray:
        """Shaded crease along the (descended) upper-lid line."""
        a = self.appearance
        descent = (1.0 - openness) * 2.0 + a.lid_droop * 0.5
        lid_line = a.center_y + a.eye_height * (descent - 1.0)
        band = (self._yy > lid_line - 3.0) & (self._yy <= lid_line + 1.0)
        inside_x = np.abs(self._xx - a.center_x) < a.eye_width
        shade = a.skin_shade * 0.82
        return np.where(band & inside_x, np.minimum(frame, shade), frame)

    def _sample_shadow_patches(self) -> list[tuple[float, float, float, float, float]]:
        """Static peripheral dark smudges (eye shadow, mascara smears,
        lens shading) unique to each participant.

        These are the 'extraneous pixels' of §4.2: they sit *outside* the
        eye opening, darker than skin but well above the binarization
        threshold, so the POLONet front end (binarize + crop) discards
        them entirely while a full-frame appearance model has to learn
        around each user's unique clutter layout.
        """
        a = self.appearance
        patches = []
        n = int(self._rng.integers(0, self.config.max_shadow_patches + 1))
        for _ in range(n):
            for _attempt in range(16):
                cx = self._rng.uniform(0, self.config.width)
                cy = self._rng.uniform(0, self.config.height)
                distance = math.hypot(cx - a.center_x, cy - a.center_y)
                if distance > 1.15 * a.eye_width:
                    break
            else:
                continue
            patches.append(
                (
                    cx,
                    cy,
                    self._rng.uniform(8.0, 22.0),  # radius px
                    self._rng.uniform(0.35, 0.8),  # squash
                    # Above the gamma1 binarization threshold even after
                    # vignetting, so the IPU never mistakes a smudge for
                    # the pupil.
                    self._rng.uniform(0.30, 0.42),  # intensity
                )
            )
        return patches

    def _draw_shadow_patches(self, frame: np.ndarray) -> np.ndarray:
        for cx, cy, radius, squash, shade in self._shadow_patches:
            mask = self._disc(cx, cy, radius, squash=squash)
            frame = np.where(mask, np.minimum(frame, shade), frame)
        return frame

    def _sample_lashes(self) -> list[tuple[float, float, float]]:
        a = self.appearance
        lashes = []
        for _ in range(self.config.eyelash_count):
            x0 = a.center_x + self._rng.uniform(-0.9, 0.9) * a.eye_width
            angle = self._rng.uniform(-0.5, 0.5) - math.pi / 2
            length = self._rng.uniform(4.0, 9.0)
            lashes.append((x0, angle, length))
        return lashes

    def _draw_lashes(self, frame: np.ndarray, openness: float) -> np.ndarray:
        a = self.appearance
        descent = (1.0 - openness) * 2.0 + a.lid_droop * 0.5
        y0 = a.center_y + a.eye_height * (descent - 1.0)
        out = frame
        for x0, angle, length in self._lash_params:
            n = int(length)
            xs = (x0 + np.cos(angle) * np.arange(n)).astype(int)
            ys = (y0 + np.sin(angle) * np.arange(n)).astype(int)
            valid = (
                (xs >= 0)
                & (xs < self.config.width)
                & (ys >= 0)
                & (ys < self.config.height)
            )
            out[ys[valid], xs[valid]] = np.minimum(out[ys[valid], xs[valid]], 0.22)
        return out

    # ------------------------------------------------------------------
    # Image-formation helpers
    # ------------------------------------------------------------------
    def _make_vignette(self) -> np.ndarray:
        h, w = self.config.height, self.config.width
        dy = (self._yy - h / 2) / (h / 2)
        dx = (self._xx - w / 2) / (w / 2)
        r2 = dx * dx + dy * dy
        return 1.0 - self.config.vignette_strength * 0.5 * r2

    def _smooth_noise(self) -> np.ndarray:
        """Low-frequency noise from an upsampled coarse grid."""
        h, w = self.config.height, self.config.width
        coarse = self._rng.normal(size=(max(h // 16, 2), max(w // 16, 2)))
        reps_y = math.ceil(h / coarse.shape[0])
        reps_x = math.ceil(w / coarse.shape[1])
        tiled = np.repeat(np.repeat(coarse, reps_y, axis=0), reps_x, axis=1)
        return tiled[:h, :w]

    @staticmethod
    def _blur_x(frame: np.ndarray, extent: int) -> np.ndarray:
        """Box blur along x simulating intra-frame saccadic motion."""
        extent = max(1, extent)
        kernel = np.ones(2 * extent + 1) / (2 * extent + 1)
        padded = np.pad(frame, ((0, 0), (extent, extent)), mode="edge")
        out = np.empty_like(frame)
        for row in range(frame.shape[0]):
            out[row] = np.convolve(padded[row], kernel, mode="valid")
        return out
