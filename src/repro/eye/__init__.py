"""Synthetic near-eye imaging substrate (OpenEDS-2020 stand-in).

Provides a procedural eye renderer, an oculomotor behaviour model, and
dataset synthesis with the OpenEDS annotation schema (per-frame gaze
vector in degrees plus movement-type label).
"""

from repro.eye.dataset import (
    EyeDataset,
    EyeSequence,
    make_openeds_like,
    synthesize_dataset,
    synthesize_sequence,
)
from repro.eye.events import (
    EventMix,
    EventSegment,
    MovementType,
    post_saccade_mask,
    saccade_fraction,
    segments_from_labels,
)
from repro.eye.eyeball import EyeAppearance, EyeGeometry, PupilPose
from repro.eye.loader import load_dataset, load_sequence
from repro.eye.motion import GazeTrack, OculomotorConfig, OculomotorModel
from repro.eye.renderer import NearEyeRenderer, RenderConfig

__all__ = [
    "EyeDataset",
    "EyeSequence",
    "make_openeds_like",
    "synthesize_dataset",
    "synthesize_sequence",
    "EventMix",
    "EventSegment",
    "MovementType",
    "post_saccade_mask",
    "saccade_fraction",
    "segments_from_labels",
    "EyeAppearance",
    "EyeGeometry",
    "PupilPose",
    "load_dataset",
    "load_sequence",
    "GazeTrack",
    "OculomotorConfig",
    "OculomotorModel",
    "NearEyeRenderer",
    "RenderConfig",
]
