"""Synthetic OpenEDS-2020-like dataset.

OpenEDS-2020 provides per-participant near-eye image sequences annotated
with gaze vectors and movement types (128,000 train frames from 32
participants; 70,400 validation frames from 8 participants).  This module
synthesizes datasets with the same schema from the procedural eye
renderer and the oculomotor model; ``make_openeds_like`` reproduces the
participant split at a configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eye.eyeball import EyeAppearance
from repro.eye.motion import GazeTrack, OculomotorConfig, OculomotorModel
from repro.eye.renderer import NearEyeRenderer, RenderConfig
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive


@dataclass
class EyeSequence:
    """One participant's contiguous recording."""

    participant: int
    images: np.ndarray  # (T, H, W) float32 in [0, 1]
    gaze_deg: np.ndarray  # (T, 2)
    labels: np.ndarray  # (T,) MovementType values
    openness: np.ndarray  # (T,)
    velocity_deg_s: np.ndarray  # (T,)
    post_saccade: np.ndarray  # (T,) bool
    fps: float

    def __post_init__(self) -> None:
        n = self.images.shape[0]
        for name in ("gaze_deg", "labels", "openness", "velocity_deg_s", "post_saccade"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"{name} length mismatch with images ({n})")

    def __len__(self) -> int:
        return self.images.shape[0]


@dataclass
class EyeDataset:
    """A collection of sequences plus flattened convenience views."""

    sequences: list[EyeSequence] = field(default_factory=list)

    def __len__(self) -> int:
        return sum(len(s) for s in self.sequences)

    @property
    def participants(self) -> list[int]:
        return [s.participant for s in self.sequences]

    def images(self) -> np.ndarray:
        return np.concatenate([s.images for s in self.sequences], axis=0)

    def gaze(self) -> np.ndarray:
        return np.concatenate([s.gaze_deg for s in self.sequences], axis=0)

    def labels(self) -> np.ndarray:
        return np.concatenate([s.labels for s in self.sequences], axis=0)

    def subsample(self, n: int, seed=None) -> tuple[np.ndarray, np.ndarray]:
        """Random (images, gaze) sample of size ``n`` across all sequences —
        the 'small calibration dataset' of §4.2."""
        rng = default_rng(seed)
        total = len(self)
        if n > total:
            raise ValueError(f"requested {n} frames but dataset has {total}")
        idx = np.sort(rng.choice(total, size=n, replace=False))
        return self.images()[idx], self.gaze()[idx]


def synthesize_sequence(
    participant: int,
    n_frames: int,
    render_config: "RenderConfig | None" = None,
    motion_config: "OculomotorConfig | None" = None,
    seed=None,
) -> EyeSequence:
    """Render one participant's sequence from a sampled appearance."""
    check_positive("n_frames", n_frames)
    rng = default_rng(seed)
    render_config = render_config or RenderConfig()
    appearance = EyeAppearance.sample(rng, render_config.width, render_config.height)
    renderer = NearEyeRenderer(appearance, render_config, seed=rng)
    motion = OculomotorModel(motion_config, seed=rng)
    track: GazeTrack = motion.generate(n_frames)

    dilation = 1.0 + 0.15 * np.sin(np.arange(n_frames) / track.fps * 0.7)
    images = np.empty(
        (n_frames, render_config.height, render_config.width), dtype=np.float32
    )
    blur = np.where(track.velocity_deg_s > 150.0, track.velocity_deg_s / 120.0, 0.0)
    for i in range(n_frames):
        images[i] = renderer.render(
            track.gaze_deg[i],
            openness=float(track.openness[i]),
            dilation=float(dilation[i]),
            motion_blur=float(blur[i]),
        )
    return EyeSequence(
        participant=participant,
        images=images,
        gaze_deg=track.gaze_deg,
        labels=track.labels,
        openness=track.openness,
        velocity_deg_s=track.velocity_deg_s,
        post_saccade=track.post_saccade,
        fps=track.fps,
    )


def synthesize_dataset(
    n_participants: int,
    frames_per_participant: int,
    render_config: "RenderConfig | None" = None,
    motion_config: "OculomotorConfig | None" = None,
    seed=None,
) -> EyeDataset:
    """Synthesize a multi-participant dataset with independent appearances."""
    check_positive("n_participants", n_participants)
    rng = default_rng(seed)
    sequences = [
        synthesize_sequence(
            participant=p,
            n_frames=frames_per_participant,
            render_config=render_config,
            motion_config=motion_config,
            seed=rng,
        )
        for p in range(n_participants)
    ]
    return EyeDataset(sequences)


def make_openeds_like(
    scale: float = 0.01,
    render_config: "RenderConfig | None" = None,
    motion_config: "OculomotorConfig | None" = None,
    seed: int = 2020,
) -> tuple[EyeDataset, EyeDataset]:
    """Train/validation datasets mirroring the OpenEDS-2020 split shape.

    At ``scale=1.0`` this produces the full 32x4000 / 8x8800 frame counts;
    the default small scale keeps pure-python pipelines tractable while
    preserving the participant structure (train and validation participants
    are disjoint draws, so validation exercises appearance generalization
    exactly as OpenEDS does).
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    train_frames = max(8, int(round(4000 * scale)))
    val_frames = max(8, int(round(8800 * scale)))
    n_train = max(2, int(round(32 * min(1.0, scale * 20))))
    n_val = max(1, int(round(8 * min(1.0, scale * 20))))
    rng = default_rng(seed)
    train = synthesize_dataset(
        n_train, train_frames, render_config, motion_config, seed=rng
    )
    val = synthesize_dataset(n_val, val_frames, render_config, motion_config, seed=rng)
    # Re-tag validation participants so ids do not collide with train.
    for offset, seq in enumerate(val.sequences):
        seq.participant = 1000 + offset
    return train, val
