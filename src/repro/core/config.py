"""Configuration dataclasses for POLONet components.

``paper()`` constructors reproduce the published hyperparameters
(§4, §6); ``compact()`` constructors give width/depth-reduced variants
that train in seconds under the numpy substrate while preserving every
architectural mechanism (token pruning stages, recurrence, thresholds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class GazeViTConfig:
    """POLOViT architecture (paper §4.3: 8 blocks, 6 heads, dim 384,
    224x224 inputs with 16x16 patches, pruning every 2 blocks)."""

    image_size: int = 224
    patch_size: int = 16
    dim: int = 384
    depth: int = 8
    num_heads: int = 6
    mlp_ratio: float = 4.0
    prune_every: int = 2

    def __post_init__(self) -> None:
        check_positive("image_size", self.image_size)
        check_positive("depth", self.depth)
        if self.image_size % self.patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")
        if self.dim % self.num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @staticmethod
    def paper() -> "GazeViTConfig":
        return GazeViTConfig()

    @staticmethod
    def compact() -> "GazeViTConfig":
        """Small variant for numpy-speed training: 4 blocks, dim 64.

        The 64x64 input keeps ~1 px per degree of gaze after the crop
        resize, which the regression needs; depth/width are where the
        savings come from.
        """
        return GazeViTConfig(
            image_size=64, patch_size=8, dim=64, depth=4, num_heads=4, mlp_ratio=2.0
        )

    @staticmethod
    def tiny() -> "GazeViTConfig":
        """Minimal variant for unit tests."""
        return GazeViTConfig(
            image_size=32, patch_size=4, dim=48, depth=4, num_heads=4, mlp_ratio=2.0
        )


@dataclass(frozen=True)
class SaccadeNetConfig:
    """Saccade detection network (paper §4.1/§6.2: hidden dim 32).

    ``head_hidden`` adds one small ReLU layer before the sigmoid readout.
    The paper uses a single linear layer, but its binary maps are 16x
    larger than our 160x120 sensor's; at our scale the per-frame pupil
    displacement is sub-pixel and the "did it move" decision is not
    linearly separable from the recurrent state, so a one-layer head is
    kept available (``head_hidden=0``) while the default uses 16 hidden
    units.  The deviation is documented in DESIGN.md.
    """

    conv_channels: int = 4
    conv_kernel: int = 3
    pool: int = 2
    hidden_dim: int = 32
    head_hidden: int = 16
    input_channels: int = 2

    def __post_init__(self) -> None:
        check_positive("conv_channels", self.conv_channels)
        check_positive("hidden_dim", self.hidden_dim)
        check_positive("head_hidden", self.head_hidden, strict=False)
        if self.input_channels not in (1, 2):
            raise ValueError(
                f"input_channels must be 1 (Eq. 2 exactly) or 2 (current + "
                f"previous map), got {self.input_channels}"
            )

    @staticmethod
    def paper() -> "SaccadeNetConfig":
        return SaccadeNetConfig()


@dataclass(frozen=True)
class PolonetConfig:
    """Algorithm-1 hyperparameters.

    ``gamma1`` is the binarization threshold on the 8-bit intensity scale
    (paper value 40, i.e. 40/255 after normalization); ``gamma2`` is the
    frame-difference pixel-count threshold for gaze reuse (paper value 10).
    ``pool_m`` is the M x M average-pooling size (paper §5.1 uses M = 4)
    and ``pupil_window`` the S x S pupil-search window (paper uses 5 x 5).
    ``crop_height``/``crop_width`` are the fixed bounding-box size H1 x H2.
    """

    gamma1: float = 40.0
    gamma2: float = 10.0
    pool_m: int = 4
    pupil_window: int = 5
    crop_height: int = 96
    crop_width: int = 96
    post_saccade_s: float = 0.05

    def __post_init__(self) -> None:
        check_in_range("gamma1", self.gamma1, 0.0, 255.0)
        check_positive("gamma2", self.gamma2)
        check_positive("pool_m", self.pool_m)
        if self.pupil_window % 2 == 0:
            raise ValueError("pupil_window must be odd")

    @property
    def gamma1_unit(self) -> float:
        """Binarization threshold on the [0, 1] intensity scale."""
        return self.gamma1 / 255.0

    @staticmethod
    def paper() -> "PolonetConfig":
        return PolonetConfig()


@dataclass(frozen=True)
class PerformanceLossConfig:
    """Performance-aware training objective (paper Eq. 5).

    ``smooth_n`` is the log-sum-exp sharpness N (paper uses 100, with
    errors expressed in radians); ``lam`` weights the auxiliary mean
    squared error term.
    """

    smooth_n: float = 100.0
    lam: float = 0.5

    def __post_init__(self) -> None:
        check_positive("smooth_n", self.smooth_n)
        check_positive("lam", self.lam, strict=False)

    @staticmethod
    def paper() -> "PerformanceLossConfig":
        return PerformanceLossConfig()
