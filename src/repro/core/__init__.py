"""POLONet: the paper's algorithmic contribution (§4).

Saccade detection, gaze reuse, analytical cropping, the token-prunable
gaze ViT with performance-aware training, and the Algorithm-1 runtime.
"""

from repro.core.config import (
    GazeViTConfig,
    PerformanceLossConfig,
    PolonetConfig,
    SaccadeNetConfig,
)
from repro.core.gaze_vit import PoloViT
from repro.core.losses import (
    angular_error_tensor,
    hard_max_loss,
    make_performance_loss,
    mse_radians_loss,
    performance_aware_loss,
)
from repro.core.persistence import load_polonet, save_polonet
from repro.core.polonet import Decision, FrameResult, PoloNet, RuntimeStats
from repro.core.preprocessing import (
    PupilDetection,
    average_pool,
    binarize,
    binary_map,
    crop_frame,
    find_pupil_center,
    frame_difference,
    preprocess_frame,
    should_reuse,
)
from repro.core.saccade import SaccadeDetector, saccade_metrics
from repro.core.training import (
    PolonetBundle,
    build_crop_dataset,
    build_polonet,
    build_saccade_sequences,
    evaluate_saccade_detector,
    train_polovit,
    train_saccade_detector,
)

__all__ = [
    "GazeViTConfig",
    "PerformanceLossConfig",
    "PolonetConfig",
    "SaccadeNetConfig",
    "PoloViT",
    "angular_error_tensor",
    "hard_max_loss",
    "make_performance_loss",
    "mse_radians_loss",
    "performance_aware_loss",
    "load_polonet",
    "save_polonet",
    "Decision",
    "FrameResult",
    "PoloNet",
    "RuntimeStats",
    "PupilDetection",
    "average_pool",
    "binarize",
    "binary_map",
    "crop_frame",
    "find_pupil_center",
    "frame_difference",
    "preprocess_frame",
    "should_reuse",
    "SaccadeDetector",
    "saccade_metrics",
    "PolonetBundle",
    "build_crop_dataset",
    "build_polonet",
    "build_saccade_sequences",
    "evaluate_saccade_detector",
    "train_polovit",
    "train_saccade_detector",
]
