"""Frame preprocessing: the functional golden model of the IPU (§4.1/§4.2).

Four stages, all reusing the binarized map as the paper's hardware does:

1. M x M average pooling to shrink the frame.
2. Binarization against gamma1 (dark -> 1, bright -> 0).
3. Gaze-reuse test: XOR-difference count between consecutive binary maps
   compared against gamma2.
4. Pupil-center search: S x S sliding-window sum over the binary map
   (evaluated only at white pixels, as the IPU does), followed by a fixed
   H1 x H2 crop of the *full-resolution* frame around the detected center.

``repro.hw.ipu`` costs these exact dataflows; tests cross-check that the
hardware model and this golden model agree bit-for-bit on outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import PolonetConfig
from repro.utils.image import block_reduce_mean, crop_centered


def average_pool(frame: np.ndarray, pool_m: int) -> np.ndarray:
    """M x M average pooling (IPU adder-tree stage)."""
    return block_reduce_mean(frame, pool_m)


def binarize(pooled: np.ndarray, gamma1_unit: float) -> np.ndarray:
    """Binary map: 1 where darker than the threshold (pupil), else 0."""
    return (pooled < gamma1_unit).astype(np.uint8)


def binary_map(frame: np.ndarray, config: PolonetConfig) -> np.ndarray:
    """Pooling + binarization in one call (Algorithm 1 lines 2-3)."""
    return binarize(average_pool(frame, config.pool_m), config.gamma1_unit)


def frame_difference(current: np.ndarray, previous: np.ndarray) -> int:
    """Count of differing binary pixels (the XOR-array + adder tree)."""
    if current.shape != previous.shape:
        raise ValueError(f"binary map shapes differ: {current.shape} vs {previous.shape}")
    return int(np.sum(current != previous))


def should_reuse(current: np.ndarray, previous: "np.ndarray | None", gamma2: float) -> bool:
    """Gaze-reuse decision (Algorithm 1 line 7)."""
    if previous is None:
        return False
    return frame_difference(current, previous) < gamma2


@dataclass(frozen=True)
class PupilDetection:
    """Pupil-center search result, in both binary-map and frame coordinates."""

    row_pooled: int
    col_pooled: int
    row: int
    col: int
    window_sum: int

    @property
    def found(self) -> bool:
        """Whether any dark pixel existed (a blank map yields sum 0)."""
        return self.window_sum > 0


def find_pupil_center(binary: np.ndarray, window: int, pool_m: int = 1) -> PupilDetection:
    """S x S sliding-window sum over the binary map; the maximal window's
    center is the pupil center (§4.2).

    Matches the IPU's selective evaluation: windows are only scored where
    the center pixel is 1.  Ties resolve to the first maximal pixel in
    raster order (the hardware keeps the first maximum it sees in its
    comparator register).  ``pool_m`` converts the result back to
    full-resolution frame coordinates.
    """
    if window % 2 == 0:
        raise ValueError("window must be odd")
    h, w = binary.shape
    half = window // 2
    padded = np.pad(binary.astype(np.int32), half)
    # Integral image for O(1) window sums.
    integral = np.zeros((h + window, w + window), dtype=np.int64)
    integral[1:, 1:] = padded.cumsum(axis=0).cumsum(axis=1)
    sums = (
        integral[window:, window:]
        - integral[:-window, window:]
        - integral[window:, :-window]
        + integral[:-window, :-window]
    )
    sums = np.where(binary > 0, sums, -1)  # only white-centred windows compete
    best = int(np.argmax(sums))
    row_p, col_p = divmod(best, w)
    best_sum = int(sums[row_p, col_p])
    if best_sum < 0:
        # No white pixels at all: fall back to the map center.
        row_p, col_p, best_sum = h // 2, w // 2, 0
    return PupilDetection(
        row_pooled=row_p,
        col_pooled=col_p,
        row=row_p * pool_m + pool_m // 2,
        col=col_p * pool_m + pool_m // 2,
        window_sum=best_sum,
    )


def crop_frame(frame: np.ndarray, detection: PupilDetection, config: PolonetConfig) -> np.ndarray:
    """Fixed-size H1 x H2 crop of the full-resolution frame centred on the
    detected pupil (Algorithm 1 line 11)."""
    return crop_centered(
        frame, detection.row, detection.col, config.crop_height, config.crop_width
    )


def preprocess_frame(frame: np.ndarray, config: PolonetConfig):
    """Full front-end for one frame: returns (binary map, detection, crop)."""
    binary = binary_map(frame, config)
    detection = find_pupil_center(binary, config.pupil_window, config.pool_m)
    crop = crop_frame(frame, detection, config)
    return binary, detection, crop
