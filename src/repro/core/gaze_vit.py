"""POLOViT: the token-prunable gaze-tracking ViT (paper §4.3, Fig. 7).

Wraps the generic :class:`repro.nn.ViTEncoder` with a 2-D gaze regression
head, INT8 post-training quantization, token-filter calibration (mapping
a target overall pruning ratio to a received-attention threshold), and a
hardware workload description parameterized by the observed token trace.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import GazeViTConfig
from repro.hw.ops import MatMulOp, NonlinearKind, NonlinearOp
from repro.nn import (
    ActivationQuantizer,
    Linear,
    Module,
    QuantSpec,
    Tensor,
    TokenFilter,
    ViTEncoder,
    no_grad,
    quantize_weights,
)
from repro.nn.transformer import BatchTokenTrace, TokenTrace
from repro.obs.profile import profiled
from repro.utils.image import resize_bilinear


def vit_workload(config: GazeViTConfig, tokens_per_block: "list[int] | None" = None) -> list:
    """Per-frame inference ops of a gaze ViT with the given per-block
    token counts (defaults to no pruning)."""
    full_tokens = config.num_patches + 1
    if tokens_per_block is None:
        tokens_per_block = [full_tokens] * config.depth
    if len(tokens_per_block) != config.depth:
        raise ValueError(
            f"expected {config.depth} per-block token counts, got {len(tokens_per_block)}"
        )
    d = config.dim
    hidden = int(d * config.mlp_ratio)
    patch_in = config.patch_size * config.patch_size
    ops: list = [MatMulOp(m=full_tokens - 1, k=patch_in, n=d)]  # patch embed
    for t in tokens_per_block:
        ops.append(MatMulOp(m=t, k=d, n=3 * d))  # QKV projection
        ops.append(MatMulOp(m=t, k=d, n=t, transposed=True))  # QK^T (all heads)
        ops.append(NonlinearOp(NonlinearKind.SOFTMAX, config.num_heads * t * t))
        ops.append(MatMulOp(m=t, k=t, n=d))  # attn @ V
        ops.append(MatMulOp(m=t, k=d, n=d))  # output projection
        ops.append(MatMulOp(m=t, k=d, n=hidden))  # MLP up
        ops.append(NonlinearOp(NonlinearKind.GELU, t * hidden))
        ops.append(MatMulOp(m=t, k=hidden, n=d))  # MLP down
        ops.append(NonlinearOp(NonlinearKind.LAYERNORM, 2 * t * d))
    ops.append(MatMulOp(m=1, k=d, n=2))  # gaze head
    return ops


class PoloViT(Module):
    """Gaze-regression ViT with inference-time token pruning."""

    name = "POLOViT"

    def __init__(self, config: "GazeViTConfig | None" = None, seed: int = 0):
        super().__init__()
        self.config = config or GazeViTConfig.compact()
        c = self.config
        self.encoder = ViTEncoder(
            image_size=c.image_size,
            patch_size=c.patch_size,
            dim=c.dim,
            depth=c.depth,
            num_heads=c.num_heads,
            mlp_ratio=c.mlp_ratio,
            prune_every=c.prune_every,
            seed=seed,
        )
        self.head = Linear(c.dim, 2, seed=seed + 7777)
        self._int8 = False
        self._input_quant = ActivationQuantizer(QuantSpec(bits=8))
        self._prune_threshold: "float | None" = None
        self.last_trace: "TokenTrace | BatchTokenTrace | None" = None

    # ------------------------------------------------------------------
    # Forward paths
    # ------------------------------------------------------------------
    def forward(self, images: Tensor, token_filter: "TokenFilter | None" = None) -> Tensor:
        """(N, H, W) images -> (N, 2) gaze in degrees."""
        if self._int8:
            images = self._input_quant(images)
        emb, trace = self.encoder(images, token_filter=token_filter)
        self.last_trace = trace
        return self.head(emb)

    def prepare(self, images: np.ndarray) -> np.ndarray:
        """Resize arbitrary crops to the ViT input size and center them."""
        c = self.config
        images = np.asarray(images, dtype=np.float64)
        if images.ndim == 2:
            images = images[None]
        resized = resize_bilinear(images, c.image_size, c.image_size)
        return resized - 0.5

    @profiled(name="vit.predict", cat="nn")
    def predict(
        self, images: np.ndarray, prune: bool = True, chunk: int = 64
    ) -> np.ndarray:
        """Batch inference; pruning applies per-sample via masked selection.

        Pruned batches run one vectorized forward per chunk: each sample
        keeps its own token subset behind a live-token mask, so batching
        never changes a sample's result beyond float round-off.
        """
        prepared = self.prepare(images)
        token_filter = self.token_filter() if prune else None
        outputs = []
        with no_grad():
            for start in range(0, len(prepared), chunk):
                pred = self.forward(
                    Tensor(prepared[start : start + chunk]), token_filter=token_filter
                )
                outputs.append(pred.data.copy())
        return np.concatenate(outputs, axis=0)

    def predict_single(self, image: np.ndarray, prune: bool = True):
        """One frame -> (gaze (2,), TokenTrace) — the POLONet runtime path."""
        pred = self.predict(image[None] if image.ndim == 2 else image, prune=prune)
        return pred[0], self.last_trace

    # ------------------------------------------------------------------
    # Token pruning
    # ------------------------------------------------------------------
    def token_filter(self) -> "TokenFilter | None":
        if self._prune_threshold is None:
            return None
        return TokenFilter(threshold=self._prune_threshold, criterion="max")

    def set_prune_threshold(self, threshold: "float | None") -> None:
        """Directly set the received-attention pruning threshold sigma."""
        self._prune_threshold = threshold

    def calibrate_pruning(
        self, images: np.ndarray, target_ratio: float, tolerance: float = 0.02
    ) -> float:
        """Find the threshold sigma whose overall compute-pruning ratio
        matches ``target_ratio`` on calibration images (§7.3's sweep knob).

        Uses bisection on the threshold; returns the chosen sigma.
        """
        if not 0.0 <= target_ratio < 1.0:
            raise ValueError(f"target_ratio must be in [0, 1), got {target_ratio}")
        if target_ratio == 0.0:
            self._prune_threshold = None
            return 0.0
        prepared = self.prepare(images)

        def ratio_at(threshold: float) -> float:
            # One vectorized forward: the batch trace reports every sample's
            # independent pruning ratio.
            with no_grad():
                self.forward(
                    Tensor(prepared),
                    token_filter=TokenFilter(threshold=threshold, criterion="max"),
                )
            return self.last_trace.pruning_ratio

        lo, hi = 0.0, 1.0
        threshold = 0.5
        for _ in range(20):
            threshold = 0.5 * (lo + hi)
            achieved = ratio_at(threshold)
            if abs(achieved - target_ratio) <= tolerance:
                break
            if achieved < target_ratio:
                lo = threshold
            else:
                hi = threshold
        self._prune_threshold = threshold
        return threshold

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------
    def enable_int8(self, calibration_images: "np.ndarray | None" = None) -> None:
        """Quantize weights to INT8 and calibrate the input quantizer."""
        quantize_weights(self, QuantSpec(bits=8))
        if calibration_images is not None:
            self._input_quant.observe(self.prepare(calibration_images))
        else:
            self._input_quant.observe(np.array([0.5]))
        self._int8 = True

    @property
    def int8(self) -> bool:
        return self._int8

    # ------------------------------------------------------------------
    # Hardware workload
    # ------------------------------------------------------------------
    def workload(
        self,
        trace: "TokenTrace | BatchTokenTrace | None" = None,
        paper_scale: bool = True,
    ) -> list:
        """Per-frame inference ops.

        With ``paper_scale`` the op shapes use the published configuration
        (8 blocks, dim 384, 197 tokens) with the *relative* token counts of
        ``trace`` applied, so pruning measured on the compact model costs
        the paper-scale model consistently.  A :class:`BatchTokenTrace` is
        costed at its batch-mean token counts (the average per-frame work a
        serving batch carries).
        """
        cfg = GazeViTConfig.paper() if paper_scale else self.config
        full_tokens = cfg.num_patches + 1
        if trace is None:
            tokens_per_block = [full_tokens] * cfg.depth
        else:
            observed = (
                trace.mean_tokens_per_block()
                if isinstance(trace, BatchTokenTrace)
                else trace.tokens_per_block
            )
            scale = full_tokens / max(trace.initial_tokens, 1)
            tokens_per_block = [max(2, int(round(t * scale))) for t in observed]
            # The compact and paper models share the same depth by default;
            # if they differ, repeat the last observed count.
            while len(tokens_per_block) < cfg.depth:
                tokens_per_block.append(tokens_per_block[-1])
            tokens_per_block = tokens_per_block[: cfg.depth]
        return vit_workload(cfg, tokens_per_block)
