"""Performance-aware training objective (paper §4.3, Eqs. 3-5).

Standard gaze losses minimize the *average* angular error and leave a
long error tail; in foveated rendering the P95 error sets the foveal
radius (Eq. 1), so the tail is what actually costs rendering time.  The
paper therefore minimizes a smooth approximation of the per-batch
*maximum* error:

    max(e_1..e_B) ~= (1/N) * ln( sum_d exp(N * e_d) )

plus a small ``lam``-weighted mean-squared term that keeps the rest of
the batch contributing gradient.  Errors enter the loss in radians (the
paper's convention; N = 100 is tuned to that scale).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import PerformanceLossConfig
from repro.nn import functional as F
from repro.nn.tensor import Tensor, _to_tensor

_DEG_TO_RAD = math.pi / 180.0


def angular_error_tensor(pred_deg: Tensor, target_deg: np.ndarray, eps: float = 1e-8) -> Tensor:
    """Per-sample L2 angular error in radians, differentiable."""
    pred = _to_tensor(pred_deg)
    target = np.asarray(target_deg, dtype=np.float64)
    diff = (pred - Tensor(target)) * _DEG_TO_RAD
    return ((diff * diff).sum(axis=-1) + eps).sqrt()


def performance_aware_loss(
    pred_deg: Tensor,
    target_deg: np.ndarray,
    config: "PerformanceLossConfig | None" = None,
) -> Tensor:
    """Eq. 5: smooth-max of batch errors plus lam-weighted mean square."""
    config = config or PerformanceLossConfig()
    errors = angular_error_tensor(pred_deg, target_deg)
    smooth_max = F.logsumexp(errors * config.smooth_n, axis=0) * (1.0 / config.smooth_n)
    mean_square = (errors * errors).mean()
    return smooth_max + config.lam * mean_square


def hard_max_loss(pred_deg: Tensor, target_deg: np.ndarray) -> Tensor:
    """Eq. 4's exact per-batch maximum (ablation comparator; §4.3 notes it
    underuses the batch because only the worst sample receives gradient)."""
    errors = angular_error_tensor(pred_deg, target_deg)
    return errors.max()


def mse_radians_loss(pred_deg: Tensor, target_deg: np.ndarray) -> Tensor:
    """Plain mean-squared angular error in radians (the baselines' loss)."""
    errors = angular_error_tensor(pred_deg, target_deg)
    return (errors * errors).mean()


def make_performance_loss(config: "PerformanceLossConfig | None" = None):
    """Adapter matching the ``loss_fn(pred, target)`` training-loop shape."""
    config = config or PerformanceLossConfig()

    def loss_fn(pred: Tensor, target: np.ndarray) -> Tensor:
        return performance_aware_loss(pred, target, config)

    return loss_fn
