"""Saccade detection network (paper §4.1, Eq. 2).

A deliberately tiny model operating on the *binarized, pooled* eye map:
one convolution, max pooling, and a leaky recurrent cell whose hidden
state carries inter-frame motion evidence, followed by a small
classifier head.  On the POLO accelerator this runs in under 2% of the
gaze ViT's latency, which is what makes the saccade-gated early exit
profitable.

Two documented deviations from the paper's Eq. 2, both forced by our
sensor being 16x smaller than OpenEDS's (so per-frame pupil displacement
on the pooled map is sub-pixel):

* the conv input carries *two* channels — the current and previous
  binary maps.  The IPU already buffers the previous map for the gaze
  reuse XOR test (§5.1), so the pair costs no extra hardware; it makes
  the frame-to-frame displacement directly visible to the convolution
  instead of requiring the 32-unit recurrent state to store the previous
  pupil position at sub-pixel precision.
* an optional 16-unit ReLU layer before the sigmoid readout
  (``SaccadeNetConfig.head_hidden``), because "the position changed" is
  not linearly separable from signed difference features.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SaccadeNetConfig
from repro.hw.ops import MatMulOp, NonlinearKind, NonlinearOp, conv2d_as_matmul
from repro.nn import Conv2d, LeakyRecurrentCell, Linear, Module, Tensor, no_grad
from repro.nn import functional as F


class SaccadeDetector(Module):
    """Conv + leaky-RNN + MLP binary classifier over binary-map pairs."""

    def __init__(
        self,
        input_shape: tuple[int, int],
        config: "SaccadeNetConfig | None" = None,
        seed: int = 0,
    ):
        super().__init__()
        self.config = config or SaccadeNetConfig()
        self.input_shape = tuple(input_shape)
        c = self.config
        self.conv = Conv2d(
            c.input_channels,
            c.conv_channels,
            c.conv_kernel,
            padding=c.conv_kernel // 2,
            seed=seed,
        )
        pooled_h = self.input_shape[0] // c.pool
        pooled_w = self.input_shape[1] // c.pool
        self.feature_dim = c.conv_channels * pooled_h * pooled_w
        self.cell = LeakyRecurrentCell(self.feature_dim, c.hidden_dim, seed=seed + 1)
        if c.head_hidden > 0:
            self.head_hidden = Linear(c.hidden_dim, c.head_hidden, seed=seed + 3)
            self.fc = Linear(c.head_hidden, 1, seed=seed + 2)
        else:
            self.head_hidden = None
            self.fc = Linear(c.hidden_dim, 1, seed=seed + 2)

    # ------------------------------------------------------------------
    def features(self, stacked: Tensor) -> Tensor:
        """(B, C, H, W) binary-map stacks -> (B, feature_dim)."""
        b = stacked.shape[0]
        x = self.conv(stacked).relu()
        x = F.max_pool2d(x, self.config.pool)
        return x.reshape(b, -1)

    def classify(self, h: Tensor) -> Tensor:
        """Hidden state -> saccade logit."""
        if self.head_hidden is not None:
            h = self.head_hidden(h).relu()
        return self.fc(h)

    def _stack_step(self, maps: np.ndarray, step: int) -> np.ndarray:
        """Assemble the (B, C, H, W) input for one timestep of (B, T, H, W)
        sequences; the previous map of the first frame is the frame itself
        (no motion evidence)."""
        current = maps[:, step]
        if self.config.input_channels == 1:
            return current[:, None]
        previous = maps[:, step - 1] if step > 0 else current
        return np.stack([current, previous], axis=1)

    def forward(self, sequences: Tensor, h0: "Tensor | None" = None) -> Tensor:
        """(B, T, H, W) binary-map sequences -> (B, T) saccade logits."""
        maps = sequences.data
        b, t = maps.shape[0], maps.shape[1]
        h = h0 if h0 is not None else self.cell.initial_state(b)
        logits = []
        for step in range(t):
            x = self.features(Tensor(self._stack_step(maps, step)))
            h = self.cell(x, h)
            logits.append(self.classify(h))
        from repro.nn import concatenate

        return concatenate(logits, axis=1)  # (B, T)

    # ------------------------------------------------------------------
    def step(
        self,
        binary_map: np.ndarray,
        h: "np.ndarray | None",
        previous_map: "np.ndarray | None" = None,
    ):
        """Single-frame runtime path (no autograd).

        Args:
            binary_map: (H, W) current binary map.
            h: previous hidden state (1, hidden) or None at sequence start.
            previous_map: (H, W) previous binary map (the IPU's reuse
                buffer); defaults to the current map at sequence start.

        Returns:
            (saccade_probability, new_hidden_state)
        """
        current = binary_map.astype(np.float64)
        if self.config.input_channels == 1:
            stacked = current[None, None]
        else:
            prev = (
                previous_map.astype(np.float64)
                if previous_map is not None
                else current
            )
            stacked = np.stack([current, prev])[None]
        with no_grad():
            h_t = Tensor(h) if h is not None else None
            feats = self.features(Tensor(stacked))
            new_h = self.cell(feats, h_t)
            prob = self.classify(new_h).sigmoid()
        return float(prob.data[0, 0]), new_h.data.copy()

    def detect(self, prob: float, threshold: float = 0.5) -> bool:
        return prob >= threshold

    # ------------------------------------------------------------------
    def workload(self, map_shape: "tuple[int, int] | None" = None) -> list:
        """Per-frame inference ops at the given binary-map resolution.

        Defaults to the paper-scale map: a 640x400 OpenEDS frame pooled by
        M = 4 gives a 160x100 binary map.
        """
        h, w = map_shape or (100, 160)
        c = self.config
        ops = [
            conv2d_as_matmul(h, w, c.input_channels, c.conv_channels, kernel=c.conv_kernel),
            NonlinearOp(NonlinearKind.RELU, h * w * c.conv_channels),
        ]
        feat = c.conv_channels * (h // c.pool) * (w // c.pool)
        ops.append(MatMulOp(m=1, k=feat, n=c.hidden_dim))
        ops.append(MatMulOp(m=1, k=c.hidden_dim, n=c.hidden_dim))
        ops.append(NonlinearOp(NonlinearKind.TANH, c.hidden_dim))
        if c.head_hidden > 0:
            ops.append(MatMulOp(m=1, k=c.hidden_dim, n=c.head_hidden))
            ops.append(NonlinearOp(NonlinearKind.RELU, c.head_hidden))
            ops.append(MatMulOp(m=1, k=c.head_hidden, n=1))
        else:
            ops.append(MatMulOp(m=1, k=c.hidden_dim, n=1))
        ops.append(NonlinearOp(NonlinearKind.SIGMOID, 1))
        return ops


def saccade_metrics(predicted: np.ndarray, actual: np.ndarray) -> dict[str, float]:
    """Accuracy and macro F1 for binary saccade classification (Table 2)."""
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError("prediction/label shape mismatch")
    accuracy = float(np.mean(predicted == actual))

    def f1(positive: bool) -> float:
        pred_p = predicted == positive
        act_p = actual == positive
        tp = float(np.sum(pred_p & act_p))
        fp = float(np.sum(pred_p & ~act_p))
        fn = float(np.sum(~pred_p & act_p))
        if tp == 0:
            return 0.0
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        return 2 * precision * recall / (precision + recall)

    macro_f1 = 0.5 * (f1(True) + f1(False))
    return {"accuracy": accuracy, "macro_f1": macro_f1}
