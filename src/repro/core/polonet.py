"""POLONet runtime: the Algorithm-1 orchestration of saccade gating,
gaze reuse, analytical cropping, and the gaze ViT (paper §4, Fig. 5).

Per frame:

1. Pool and binarize the frame (gamma1).
2. Run the saccade RNN on the binary map; a detected saccade halts all
   further gaze processing for this frame.
3. Otherwise compare the binary map against the previous frame's; if the
   difference is under gamma2, reuse the buffered gaze.
4. Otherwise locate the pupil, crop H1 x H2 around it, and run POLOViT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core import preprocessing as pre
from repro.core.config import PolonetConfig
from repro.core.gaze_vit import PoloViT
from repro.core.saccade import SaccadeDetector
from repro.nn.transformer import TokenTrace
from repro.obs.profile import get_global_tracer


class Decision(enum.Enum):
    """Which Algorithm-1 path handled a frame."""

    SACCADE = "saccade"
    REUSE = "reuse"
    PREDICT = "predict"


@dataclass
class FrameResult:
    """Outcome of processing one frame."""

    decision: Decision
    gaze_deg: "np.ndarray | None"
    saccade_probability: float
    frame_difference: "int | None"
    pupil: "pre.PupilDetection | None"
    trace: "TokenTrace | None"

    @property
    def has_gaze(self) -> bool:
        return self.gaze_deg is not None


@dataclass
class RuntimeStats:
    """Counts of each decision over a run (drives Eqs. 6-7 event mix)."""

    saccade: int = 0
    reuse: int = 0
    predict: int = 0

    @property
    def total(self) -> int:
        return self.saccade + self.reuse + self.predict

    def record(self, decision: Decision) -> None:
        if decision is Decision.SACCADE:
            self.saccade += 1
        elif decision is Decision.REUSE:
            self.reuse += 1
        else:
            self.predict += 1

    def probabilities(self) -> dict[str, float]:
        total = max(self.total, 1)
        return {
            "p_saccade": self.saccade / total,
            "p_reuse": self.reuse / total,
            "p_predict": self.predict / total,
        }


class PoloNet:
    """Stateful per-frame gaze processor (Algorithm 1)."""

    def __init__(
        self,
        saccade_detector: SaccadeDetector,
        gaze_vit: PoloViT,
        config: "PolonetConfig | None" = None,
        saccade_threshold: float = 0.5,
        prune: bool = True,
    ):
        self.config = config or PolonetConfig()
        self.saccade_detector = saccade_detector
        self.gaze_vit = gaze_vit
        self.saccade_threshold = saccade_threshold
        self.prune = prune
        self.stats = RuntimeStats()
        self.reset()

    def reset(self) -> None:
        """Clear all inter-frame state (previous map, buffered gaze, RNN)."""
        self._prev_binary: "np.ndarray | None" = None
        self._buffered_gaze: "np.ndarray | None" = None
        self._hidden: "np.ndarray | None" = None
        self.stats = RuntimeStats()

    # ------------------------------------------------------------------
    def process_frame(self, frame: np.ndarray) -> FrameResult:
        """Run Algorithm 1 on one (H, W) frame in [0, 1].

        Each stage runs under a wall-clock span on the global tracer
        (no-ops unless an enabled tracer was installed via
        :func:`repro.obs.set_global_tracer`).
        """
        cfg = self.config
        tracer = get_global_tracer()
        with tracer.span("polonet.binarize", cat="polonet"):
            binary = pre.binary_map(frame, cfg)

        with tracer.span("polonet.saccade", cat="polonet"):
            prob, self._hidden = self.saccade_detector.step(
                binary, self._hidden, previous_map=self._prev_binary
            )
        if prob >= self.saccade_threshold:
            # Saccade: halt everything; rendering will use the saccade path.
            self._prev_binary = binary
            result = FrameResult(
                decision=Decision.SACCADE,
                gaze_deg=None,
                saccade_probability=prob,
                frame_difference=None,
                pupil=None,
                trace=None,
            )
            self.stats.record(result.decision)
            return result

        with tracer.span("polonet.reuse_check", cat="polonet"):
            diff = (
                pre.frame_difference(binary, self._prev_binary)
                if self._prev_binary is not None
                else None
            )
        if (
            diff is not None
            and diff < cfg.gamma2
            and self._buffered_gaze is not None
        ):
            self._prev_binary = binary
            result = FrameResult(
                decision=Decision.REUSE,
                gaze_deg=self._buffered_gaze.copy(),
                saccade_probability=prob,
                frame_difference=diff,
                pupil=None,
                trace=None,
            )
            self.stats.record(result.decision)
            return result

        with tracer.span("polonet.crop", cat="polonet"):
            detection = pre.find_pupil_center(binary, cfg.pupil_window, cfg.pool_m)
            crop = pre.crop_frame(frame, detection, cfg)
        with tracer.span("polonet.vit", cat="polonet"):
            gaze, trace = self.gaze_vit.predict_single(crop, prune=self.prune)
        self._buffered_gaze = gaze.copy()
        self._prev_binary = binary
        result = FrameResult(
            decision=Decision.PREDICT,
            gaze_deg=gaze,
            saccade_probability=prob,
            frame_difference=diff,
            pupil=detection,
            trace=trace,
        )
        self.stats.record(result.decision)
        return result

    def process_sequence(self, frames: np.ndarray) -> list[FrameResult]:
        """Process frames in order, maintaining state across them."""
        return [self.process_frame(frame) for frame in frames]
