"""Training pipelines for POLONet components (paper §6).

Provides dataset preparation (analytical cropping of training frames,
binary-map sequence extraction), the POLOViT trainer with the
performance-aware loss, the saccade-RNN trainer (BPTT with class
weighting), and a one-call builder that assembles a ready-to-run
:class:`~repro.core.polonet.PoloNet`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import TrainingLog, iterate_minibatches
from repro.core import preprocessing as pre
from repro.core.config import (
    GazeViTConfig,
    PerformanceLossConfig,
    PolonetConfig,
    SaccadeNetConfig,
)
from repro.core.gaze_vit import PoloViT
from repro.core.losses import make_performance_loss, mse_radians_loss
from repro.core.polonet import PoloNet
from repro.core.saccade import SaccadeDetector
from repro.eye.dataset import EyeDataset
from repro.eye.events import MovementType
from repro.nn import Adam, CosineSchedule, Tensor
from repro.nn import functional as F
from repro.utils.rng import default_rng


# ----------------------------------------------------------------------
# Dataset preparation
# ----------------------------------------------------------------------

def build_crop_dataset(
    dataset: EyeDataset,
    config: "PolonetConfig | None" = None,
    min_openness: float = 0.35,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the §4.2 analytical cropper to every usable frame.

    Frames with the eye mostly closed carry no gaze signal and are
    excluded (their labels are nominal, not observable); partially
    occluded frames are *kept* — they are the long-tail cases the
    performance-aware loss exists to handle.
    """
    config = config or PolonetConfig()
    crops, gazes = [], []
    for seq in dataset.sequences:
        for i in range(len(seq)):
            if seq.openness[i] < min_openness:
                continue
            _, detection, crop = pre.preprocess_frame(
                seq.images[i].astype(np.float64), config
            )
            crops.append(crop)
            gazes.append(seq.gaze_deg[i])
    if not crops:
        raise ValueError("no usable frames after openness filtering")
    return np.stack(crops), np.stack(gazes)


def build_saccade_sequences(
    dataset: EyeDataset,
    config: "PolonetConfig | None" = None,
    window: int = 12,
    stride: "int | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Binary-map training windows for the saccade RNN.

    Returns (sequences (B, T, h, w) float, labels (B, T) float) where a
    label of 1 marks a saccadic frame.
    """
    config = config or PolonetConfig()
    stride = stride or window
    seq_maps, seq_labels = [], []
    for seq in dataset.sequences:
        maps = np.stack(
            [pre.binary_map(im.astype(np.float64), config) for im in seq.images]
        ).astype(np.float64)
        labels = (seq.labels == MovementType.SACCADE).astype(np.float64)
        for start in range(0, len(seq) - window + 1, stride):
            seq_maps.append(maps[start : start + window])
            seq_labels.append(labels[start : start + window])
    if not seq_maps:
        raise ValueError(f"sequences shorter than window={window}")
    return np.stack(seq_maps), np.stack(seq_labels)


# ----------------------------------------------------------------------
# POLOViT training
# ----------------------------------------------------------------------

def train_polovit(
    vit: PoloViT,
    crops: np.ndarray,
    gaze_deg: np.ndarray,
    *,
    epochs: int = 15,
    batch_size: int = 32,
    lr: float = 1e-3,
    loss: str = "performance",
    loss_config: "PerformanceLossConfig | None" = None,
    grad_clip: float = 5.0,
    augment: bool = True,
    seed=None,
) -> TrainingLog:
    """Train POLOViT on cropped frames.

    ``loss`` selects between the Eq. 5 performance-aware objective
    (default) and plain MSE-in-radians (the ablation comparator).  The
    performance-aware run warms up with MSE for the first 40% of epochs —
    the smooth-max objective concentrates gradient on the worst samples,
    which suppresses tails well but converges slowly from random init.
    ``augment`` enables geometry-consistent augmentation: horizontal
    mirroring (with theta_x negated) and mild brightness jitter, both of
    which attack appearance overfitting to individual participants.
    """
    if loss == "performance":
        warmup_epochs = int(round(0.4 * epochs))
        perf_loss = make_performance_loss(loss_config)
    elif loss == "mse":
        warmup_epochs = epochs
        perf_loss = None
    else:
        raise ValueError(f"unknown loss {loss!r}; use 'performance' or 'mse'")

    rng = default_rng(seed)
    prepared = vit.prepare(crops)
    optimizer = Adam(vit.parameters(), lr=lr, weight_decay=1e-4)
    schedule = CosineSchedule(optimizer, total_steps=epochs, min_lr=lr * 0.1)
    log = TrainingLog()
    vit.train()
    for epoch in range(epochs):
        loss_fn = mse_radians_loss if epoch < warmup_epochs else perf_loss
        epoch_loss, batches = 0.0, 0
        for idx in iterate_minibatches(len(prepared), batch_size, rng):
            inputs = prepared[idx]
            targets = gaze_deg[idx]
            if augment:
                inputs, targets = _augment_batch(inputs, targets, rng)
            optimizer.zero_grad()
            pred = vit.forward(Tensor(inputs))
            value = loss_fn(pred, targets)
            value.backward()
            optimizer.clip_grad_norm(grad_clip)
            optimizer.step()
            epoch_loss += value.item()
            batches += 1
        schedule.step()
        log.losses.append(epoch_loss / max(batches, 1))
    vit.eval()
    return log


def _augment_batch(inputs: np.ndarray, targets: np.ndarray, rng) -> tuple:
    """Label-preserving augmentation battery.

    Mirror-flip (negating theta_x), brightness/contrast jitter, and
    additive sensor noise.  The jitter and noise deliberately disrupt the
    fine per-participant texture (iris pattern, lash layout) that a
    high-resolution model can otherwise use to memorize identities
    instead of learning geometry.
    """
    inputs = inputs.copy()
    targets = targets.copy()
    flip = rng.random(len(inputs)) < 0.5
    inputs[flip] = inputs[flip, :, ::-1]
    targets[flip, 0] *= -1.0
    scale = rng.uniform(0.9, 1.1, size=(len(inputs), 1, 1))
    contrast = rng.uniform(0.85, 1.15, size=(len(inputs), 1, 1))
    mean = inputs.mean(axis=(1, 2), keepdims=True)
    inputs = (inputs - mean) * contrast + mean
    inputs *= scale
    inputs += rng.normal(0.0, 0.025, size=inputs.shape)
    return inputs, targets


# ----------------------------------------------------------------------
# Saccade-RNN training
# ----------------------------------------------------------------------

def train_saccade_detector(
    detector: SaccadeDetector,
    sequences: np.ndarray,
    labels: np.ndarray,
    *,
    epochs: int = 10,
    batch_size: int = 16,
    lr: float = 2e-3,
    pos_weight: float = 4.0,
    grad_clip: float = 5.0,
    seed=None,
) -> TrainingLog:
    """BPTT training with positive-class weighting (saccades are ~10% of
    frames, so unweighted BCE collapses to the majority class)."""
    rng = default_rng(seed)
    optimizer = Adam(detector.parameters(), lr=lr)
    log = TrainingLog()
    detector.train()
    for _ in range(epochs):
        epoch_loss, batches = 0.0, 0
        for idx in iterate_minibatches(len(sequences), batch_size, rng):
            optimizer.zero_grad()
            logits = detector.forward(Tensor(sequences[idx]))
            loss = F.binary_cross_entropy_with_logits(
                logits, labels[idx], pos_weight=pos_weight
            )
            loss.backward()
            optimizer.clip_grad_norm(grad_clip)
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        log.losses.append(epoch_loss / max(batches, 1))
    detector.eval()
    return log


def evaluate_saccade_detector(
    detector: SaccadeDetector,
    dataset: EyeDataset,
    config: "PolonetConfig | None" = None,
    threshold: float = 0.5,
) -> dict[str, float]:
    """Run the stateful detector over each sequence and score it."""
    from repro.core.saccade import saccade_metrics

    config = config or PolonetConfig()
    predicted, actual = [], []
    for seq in dataset.sequences:
        hidden = None
        previous = None
        for i in range(len(seq)):
            binary = pre.binary_map(seq.images[i].astype(np.float64), config)
            prob, hidden = detector.step(binary, hidden, previous_map=previous)
            previous = binary
            predicted.append(prob >= threshold)
            actual.append(seq.labels[i] == MovementType.SACCADE)
    return saccade_metrics(np.array(predicted), np.array(actual))


# ----------------------------------------------------------------------
# One-call builder
# ----------------------------------------------------------------------

@dataclass
class PolonetBundle:
    """A trained POLONet plus its components and training logs."""

    polonet: PoloNet
    vit: PoloViT
    detector: SaccadeDetector
    vit_log: TrainingLog
    saccade_log: TrainingLog


def build_polonet(
    train_dataset: EyeDataset,
    *,
    vit_config: "GazeViTConfig | None" = None,
    polonet_config: "PolonetConfig | None" = None,
    saccade_config: "SaccadeNetConfig | None" = None,
    vit_epochs: int = 15,
    saccade_epochs: int = 8,
    prune_ratio: float = 0.2,
    int8: bool = True,
    seed: int = 0,
) -> PolonetBundle:
    """Train every POLONet component and assemble the runtime.

    Reproduces the paper's deployment configuration by default: INT8
    weights/activations and a 20% token-pruning ratio (§7.3).
    """
    vit_config = vit_config or GazeViTConfig.compact()
    polonet_config = polonet_config or PolonetConfig()
    saccade_config = saccade_config or SaccadeNetConfig()

    crops, gaze = build_crop_dataset(train_dataset, polonet_config)
    vit = PoloViT(vit_config, seed=seed)
    vit_log = train_polovit(vit, crops, gaze, epochs=vit_epochs, seed=seed)

    sample = train_dataset.sequences[0].images[0].astype(np.float64)
    map_shape = pre.binary_map(sample, polonet_config).shape
    detector = SaccadeDetector(map_shape, saccade_config, seed=seed + 1)
    seqs, labels = build_saccade_sequences(train_dataset, polonet_config)
    saccade_log = train_saccade_detector(
        detector, seqs, labels, epochs=saccade_epochs, seed=seed + 2
    )

    calib_n = min(16, len(crops))
    if int8:
        vit.enable_int8(crops[:calib_n])
    if prune_ratio > 0:
        vit.calibrate_pruning(crops[:calib_n], prune_ratio)

    polonet = PoloNet(detector, vit, polonet_config, prune=prune_ratio > 0)
    return PolonetBundle(
        polonet=polonet,
        vit=vit,
        detector=detector,
        vit_log=vit_log,
        saccade_log=saccade_log,
    )
