"""Saving and loading trained POLONet pipelines.

A deployed POLONet is more than two weight files: it carries the
Algorithm-1 thresholds, the calibrated token-pruning threshold sigma,
and the INT8 calibration state.  ``save_polonet`` writes all of it to a
directory; ``load_polonet`` reconstructs a ready-to-run
:class:`~repro.core.polonet.PoloNet`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np

from repro.core.config import GazeViTConfig, PolonetConfig, SaccadeNetConfig
from repro.core.gaze_vit import PoloViT
from repro.core.polonet import PoloNet
from repro.core.saccade import SaccadeDetector
from repro.nn import PersistenceError, load_weights, save_weights

_MANIFEST = "polonet.json"
_VIT_WEIGHTS = "gaze_vit.npz"
_DETECTOR_WEIGHTS = "saccade_detector.npz"
_FORMAT_VERSION = 1

#: Exactly the keys :func:`save_polonet` writes — a manifest with keys
#: missing or unknown is rejected before any model is constructed.
_MANIFEST_KEYS = frozenset(
    {
        "format_version",
        "polonet_config",
        "vit_config",
        "saccade_config",
        "saccade_input_shape",
        "saccade_threshold",
        "prune",
        "prune_threshold",
        "int8",
        "input_quant_peak",
    }
)


def save_polonet(polonet: PoloNet, directory: "str | os.PathLike") -> None:
    """Serialize a POLONet (weights + configs + calibration) to a dir."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    vit = polonet.gaze_vit
    detector = polonet.saccade_detector

    manifest = {
        "format_version": _FORMAT_VERSION,
        "polonet_config": dataclasses.asdict(polonet.config),
        "vit_config": dataclasses.asdict(vit.config),
        "saccade_config": dataclasses.asdict(detector.config),
        "saccade_input_shape": list(detector.input_shape),
        "saccade_threshold": polonet.saccade_threshold,
        "prune": polonet.prune,
        "prune_threshold": vit._prune_threshold,
        "int8": vit.int8,
        "input_quant_peak": vit._input_quant._peak,
    }
    with open(path / _MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    save_weights(vit, path / _VIT_WEIGHTS)
    save_weights(detector, path / _DETECTOR_WEIGHTS)


def load_polonet(directory: "str | os.PathLike") -> PoloNet:
    """Reconstruct a POLONet saved by :func:`save_polonet`.

    Every validation — manifest schema, format version, and the presence
    of both weight files — happens *before* any model is constructed, so
    a bad directory fails fast with :class:`PersistenceError` (or
    :class:`FileNotFoundError` for a missing manifest) and never leaves
    a half-initialized pipeline behind.
    """
    path = Path(directory)
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no POLONet manifest at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as err:
            raise PersistenceError(
                f"corrupt POLONet manifest {manifest_path}: {err}"
            ) from err
    if not isinstance(manifest, dict):
        raise PersistenceError(
            f"POLONet manifest {manifest_path} is not a JSON object"
        )
    missing = _MANIFEST_KEYS - manifest.keys()
    unknown = manifest.keys() - _MANIFEST_KEYS
    if missing or unknown:
        raise PersistenceError(
            f"POLONet manifest {manifest_path} schema mismatch: "
            f"missing={sorted(missing)}, unknown={sorted(unknown)}"
        )
    version = manifest["format_version"]
    if isinstance(version, int) and version > _FORMAT_VERSION:
        raise PersistenceError(
            f"POLONet directory {path} uses format version {version}, newer "
            f"than the supported {_FORMAT_VERSION} — upgrade repro to load it"
        )
    if version != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported POLONet format version {version!r}"
        )
    absent = [
        name
        for name in (_VIT_WEIGHTS, _DETECTOR_WEIGHTS)
        if not (path / name).exists()
    ]
    if absent:
        raise PersistenceError(
            f"POLONet directory {path} is missing weight file(s): "
            f"{', '.join(absent)}"
        )

    vit = PoloViT(GazeViTConfig(**manifest["vit_config"]))
    load_weights(vit, path / _VIT_WEIGHTS)
    vit._prune_threshold = manifest["prune_threshold"]
    if manifest["int8"]:
        vit._int8 = True
        vit._input_quant._peak = float(manifest["input_quant_peak"])

    detector = SaccadeDetector(
        tuple(manifest["saccade_input_shape"]),
        SaccadeNetConfig(**manifest["saccade_config"]),
    )
    load_weights(detector, path / _DETECTOR_WEIGHTS)

    return PoloNet(
        detector,
        vit,
        PolonetConfig(**manifest["polonet_config"]),
        saccade_threshold=float(manifest["saccade_threshold"]),
        prune=bool(manifest["prune"]),
    )
