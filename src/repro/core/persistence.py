"""Saving and loading trained POLONet pipelines.

A deployed POLONet is more than two weight files: it carries the
Algorithm-1 thresholds, the calibrated token-pruning threshold sigma,
and the INT8 calibration state.  ``save_polonet`` writes all of it to a
directory; ``load_polonet`` reconstructs a ready-to-run
:class:`~repro.core.polonet.PoloNet`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np

from repro.core.config import GazeViTConfig, PolonetConfig, SaccadeNetConfig
from repro.core.gaze_vit import PoloViT
from repro.core.polonet import PoloNet
from repro.core.saccade import SaccadeDetector
from repro.nn import load_weights, save_weights

_MANIFEST = "polonet.json"
_VIT_WEIGHTS = "gaze_vit.npz"
_DETECTOR_WEIGHTS = "saccade_detector.npz"
_FORMAT_VERSION = 1


def save_polonet(polonet: PoloNet, directory: "str | os.PathLike") -> None:
    """Serialize a POLONet (weights + configs + calibration) to a dir."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    vit = polonet.gaze_vit
    detector = polonet.saccade_detector

    manifest = {
        "format_version": _FORMAT_VERSION,
        "polonet_config": dataclasses.asdict(polonet.config),
        "vit_config": dataclasses.asdict(vit.config),
        "saccade_config": dataclasses.asdict(detector.config),
        "saccade_input_shape": list(detector.input_shape),
        "saccade_threshold": polonet.saccade_threshold,
        "prune": polonet.prune,
        "prune_threshold": vit._prune_threshold,
        "int8": vit.int8,
        "input_quant_peak": vit._input_quant._peak,
    }
    with open(path / _MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    save_weights(vit, path / _VIT_WEIGHTS)
    save_weights(detector, path / _DETECTOR_WEIGHTS)


def load_polonet(directory: "str | os.PathLike") -> PoloNet:
    """Reconstruct a POLONet saved by :func:`save_polonet`."""
    path = Path(directory)
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no POLONet manifest at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported POLONet format version {version!r}")

    vit = PoloViT(GazeViTConfig(**manifest["vit_config"]))
    load_weights(vit, path / _VIT_WEIGHTS)
    vit._prune_threshold = manifest["prune_threshold"]
    if manifest["int8"]:
        vit._int8 = True
        vit._input_quant._peak = float(manifest["input_quant_peak"])

    detector = SaccadeDetector(
        tuple(manifest["saccade_input_shape"]),
        SaccadeNetConfig(**manifest["saccade_config"]),
    )
    load_weights(detector, path / _DETECTOR_WEIGHTS)

    return PoloNet(
        detector,
        vit,
        PolonetConfig(**manifest["polonet_config"]),
        saccade_threshold=float(manifest["saccade_threshold"]),
        prune=bool(manifest["prune"]),
    )
