"""Algorithm-based fault tolerance (Huang–Abraham checksums) for matmul.

The classic construction: augment ``A`` with a column-sum row and ``B``
with a row-sum column, so the product carries its own redundancy::

    [ A  ]            [ C        A·rs(B) ]
    [cs(A)] [B rs(B)] = [ cs(A)·B  cs(A)·rs(B) ]

Row ``r`` of ``C`` must sum to the checksum column entry ``r``; column
``c`` must sum to the checksum row entry ``c``; everything must sum to
the corner.  A single corrupted product element shows up as exactly one
inconsistent row *and* one inconsistent column with equal residuals —
locating the element and giving the exact delta to subtract.  Corrupted
*operands* (a flipped weight or activation code) poison a whole row or
column of residuals instead, which is the multi-error signature: the
tile is recomputed from refetched operands.

Exactness: POLO's datapath is INT8 with 32-bit accumulation (paper
§4.3/§5.2), so checksums here are integer arithmetic — detection has
zero false-positive/negative margin and single-error correction is
**bit-identical** to the clean product.  The float path (``AbftGuard``
over :mod:`repro.nn` inference) uses an eps-scaled tolerance for
detection, and its recompute path is ``np.matmul`` on the original
operands, which again reproduces the clean product bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Callable

import numpy as np


class AbftOutcome(enum.Enum):
    """What the checksum verification concluded for one product."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    CHECKSUM_REPAIRED = "checksum_repaired"
    RECOMPUTED = "recomputed"


@dataclass
class AbftStats:
    """Mutable counters shared across many protected products."""

    products: int = 0
    skipped: int = 0
    clean: int = 0
    detected: int = 0
    corrected: int = 0
    checksum_repaired: int = 0
    recomputed: int = 0

    def record(self, outcome: AbftOutcome) -> None:
        if outcome is AbftOutcome.CLEAN:
            self.clean += 1
            return
        self.detected += 1
        if outcome is AbftOutcome.CORRECTED:
            self.corrected += 1
        elif outcome is AbftOutcome.CHECKSUM_REPAIRED:
            self.checksum_repaired += 1
        else:
            self.recomputed += 1

    def merge(self, other: "AbftStats") -> None:
        for field in fields(self):
            setattr(
                self, field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )

    def as_dict(self) -> dict[str, int]:
        return {field.name: getattr(self, field.name) for field in fields(self)}


def _widen(array: np.ndarray) -> tuple[np.ndarray, bool]:
    """Lift operands into the accumulation dtype (int64 or float64)."""
    if np.issubdtype(array.dtype, np.integer):
        return array.astype(np.int64), True
    return np.asarray(array, dtype=np.float64), False


def default_tolerance(k: int, a: np.ndarray, b: np.ndarray) -> float:
    """Detection tolerance for the float path.

    Checksum and direct sums of a length-``k``/-``m`` reduction disagree
    by at most ~eps per accumulated term; scaling by the operand peak
    magnitudes bounds that safely below any bit flip worth catching
    (sign/exponent/high-mantissa flips move values by many orders).
    """
    peak = float(np.abs(a).max(initial=0.0)) * float(np.abs(b).max(initial=0.0))
    return 1e-9 * max(k, 1) * peak + 1e-30


def abft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    a_check: "np.ndarray | None" = None,
    b_check: "np.ndarray | None" = None,
    corrupt: "Callable[[np.ndarray], None] | None" = None,
    tolerance: "float | None" = None,
    recompute: "Callable[[], np.ndarray] | None" = None,
    stats: "AbftStats | None" = None,
) -> tuple[np.ndarray, AbftOutcome]:
    """Checksum-protected 2-D matmul; returns ``(product, outcome)``.

    ``a``/``b`` are the operands as fetched from SRAM (possibly already
    corrupted).  ``a_check``/``b_check`` are the *stored* checksums —
    the column sums of clean ``A`` and row sums of clean ``B``, written
    when the operands were loaded; they default to sums of the given
    operands (the fault-free case).  ``corrupt`` mutates the assembled
    augmented product in place before verification, which is how the
    campaign lands accumulator-file upsets (checksum entries and corner
    included — they live in the same register file).  ``recompute`` is
    the multi-error escape hatch; it should refetch clean operands.
    Integer operands verify and correct exactly; float uses
    ``tolerance`` (default :func:`default_tolerance`).
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"abft_matmul needs 2-D operands, got {a.shape} @ {b.shape}"
        )
    a_w, integer = _widen(a)
    b_w, _ = _widen(b)
    m, k = a_w.shape
    n = b_w.shape[1]
    a_chk = a_w.sum(axis=0) if a_check is None else _widen(a_check)[0]
    b_chk = b_w.sum(axis=1) if b_check is None else _widen(b_check)[0]

    c_full = np.empty((m + 1, n + 1), dtype=a_w.dtype)
    c_full[:m, :n] = a_w @ b_w
    c_full[:m, n] = a_w @ b_chk
    c_full[m, :n] = a_chk @ b_w
    c_full[m, n] = a_chk @ b_chk
    if corrupt is not None:
        corrupt(c_full)

    tol = 0 if integer else (
        default_tolerance(k, a_w, b_w) if tolerance is None else tolerance
    )
    data = c_full[:m, :n]
    row_res = data.sum(axis=1) - c_full[:m, n]
    col_res = data.sum(axis=0) - c_full[m, :n]
    corner_res = data.sum() - c_full[m, n]
    bad_rows = np.flatnonzero(np.abs(row_res) > tol)
    bad_cols = np.flatnonzero(np.abs(col_res) > tol)
    corner_bad = abs(corner_res) > tol

    outcome = None
    if bad_rows.size == 0 and bad_cols.size == 0:
        # Either fully clean, or only the corner register was hit.
        outcome = AbftOutcome.CHECKSUM_REPAIRED if corner_bad else AbftOutcome.CLEAN
    elif (
        bad_rows.size == 1
        and bad_cols.size == 1
        and abs(row_res[bad_rows[0]] - col_res[bad_cols[0]]) <= tol
        and abs(corner_res - row_res[bad_rows[0]]) <= tol
    ):
        # One bad row, one bad column, consistent residuals: a single
        # corrupted product element.  Subtract the residual — exact in
        # the integer datapath, so the fix is bit-identical.
        data[bad_rows[0], bad_cols[0]] -= row_res[bad_rows[0]]
        outcome = AbftOutcome.CORRECTED
    elif bad_cols.size == 0 and bad_rows.size == 1 and not corner_bad:
        # Row-checksum register corrupted, data consistent with the
        # corner: repair the checksum, data untouched.
        outcome = AbftOutcome.CHECKSUM_REPAIRED
    elif bad_rows.size == 0 and bad_cols.size == 1 and not corner_bad:
        outcome = AbftOutcome.CHECKSUM_REPAIRED

    if outcome is None:
        # Multi-error signature (including corrupted operands, whose
        # residuals span a whole row or column): never accept silently.
        data = recompute() if recompute is not None else np.asarray(a_w @ b_w)
        data = _widen(data)[0]
        outcome = AbftOutcome.RECOMPUTED
    else:
        data = np.ascontiguousarray(data)

    if stats is not None:
        stats.products += 1
        stats.record(outcome)
    return data, outcome


class AbftGuard:
    """Installable hook protecting every ``Tensor @ Tensor`` product.

    Install via :func:`repro.nn.matmul_guard`::

        guard = AbftGuard()
        with matmul_guard(guard):
            gaze = model(frames)

    The hook receives the operands and the already-computed product.
    With nothing injected it verifies the checksums and hands back the
    *same* array object — the protected path is bit-identical to the
    unprotected one by construction.  On mismatch it corrects a single
    2-D product element in place, and otherwise recomputes with
    ``np.matmul`` on the original operands (bit-identical to the clean
    product, since the operands at this layer live in host memory).

    ``inject`` is a test/campaign hook called with the product before
    verification; mutate it to simulate accumulator upsets.
    """

    def __init__(
        self,
        stats: "AbftStats | None" = None,
        rtol: float = 1e-9,
        inject: "Callable[[np.ndarray], None] | None" = None,
    ):
        self.stats = AbftStats() if stats is None else stats
        self.rtol = rtol
        self.inject = inject

    def __call__(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        self.stats.products += 1
        if a.ndim < 2 or b.ndim < 2:
            # Vector products carry no row/column structure to checksum.
            self.stats.skipped += 1
            return out
        if self.inject is not None:
            self.inject(out)
        k = a.shape[-1]
        peak = float(np.abs(a).max(initial=0.0)) * float(np.abs(b).max(initial=0.0))
        tol = self.rtol * k * peak + 1e-30
        # cs(A)·B and A·rs(B), batched over leading axes.
        col_check = np.matmul(a.sum(axis=-2)[..., None, :], b)[..., 0, :]
        row_check = np.matmul(a, b.sum(axis=-1)[..., None])[..., 0]
        row_res = out.sum(axis=-1) - row_check
        col_res = out.sum(axis=-2) - col_check
        if (np.abs(row_res) <= tol).all() and (np.abs(col_res) <= tol).all():
            self.stats.record(AbftOutcome.CLEAN)
            return out
        if out.ndim == 2:
            bad_rows = np.flatnonzero(np.abs(row_res) > tol)
            bad_cols = np.flatnonzero(np.abs(col_res) > tol)
            if (
                bad_rows.size == 1
                and bad_cols.size == 1
                and abs(row_res[bad_rows[0]] - col_res[bad_cols[0]]) <= tol
            ):
                out[bad_rows[0], bad_cols[0]] -= row_res[bad_rows[0]]
                self.stats.record(AbftOutcome.CORRECTED)
                return out
        self.stats.record(AbftOutcome.RECOMPUTED)
        return np.matmul(a, b)
