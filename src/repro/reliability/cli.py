"""``python -m repro sdc`` — soft-error resilience campaign.

Sweeps FIT rates and compares the unprotected datapath, ABFT-protected
GEMMs, and the guard-only configuration on detection coverage, residual
gaze error, and the measured accelerator cycle overhead of protection.
The printed report is byte-identical across runs of the same flags —
the ``sdc-smoke`` CI job runs it twice and diffs the output.
"""

from __future__ import annotations

import argparse

from dataclasses import fields

from repro.obs.cli import add_slo_arguments
from repro.reliability.campaign import (
    PROTECTIONS,
    SdcCampaignConfig,
    SdcReport,
    default_sdc_campaign,
    format_sdc_report,
    run_sdc_campaign,
    sdc_summary_metrics,
)


# ----------------------------------------------------------------------
# Campaign entry point (repro.exp)
# ----------------------------------------------------------------------
def resolve_run_config(params: dict) -> dict:
    """Validate campaign params -> the fully resolved canonical dict.

    Params are flat :class:`SdcCampaignConfig` field overrides
    (``fit_rates`` / ``protections`` accept lists); the resolved dict
    spells out every field so the config hash is spelling-independent.
    """
    from repro.recover.configio import sdc_campaign_to_dict

    params = dict(params)
    known = {f.name for f in fields(SdcCampaignConfig)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown sdc params: {unknown} (known: {sorted(known)})"
        )
    if "fit_rates" in params:
        params["fit_rates"] = tuple(float(f) for f in params["fit_rates"])
    if "protections" in params:
        params["protections"] = tuple(str(p) for p in params["protections"])
    config = SdcCampaignConfig(**params)
    return {"kind": "sdc", "config": sdc_campaign_to_dict(config)}


def run_from_config(params: dict) -> SdcReport:
    """Campaign entry point: params dict -> the campaign's SdcReport."""
    from repro.recover.configio import sdc_campaign_from_dict

    resolved = resolve_run_config(params)
    return run_sdc_campaign(sdc_campaign_from_dict(resolved["config"]))


def build_parser() -> argparse.ArgumentParser:
    base = default_sdc_campaign()
    parser = argparse.ArgumentParser(
        prog="python -m repro sdc",
        description="Run the seeded soft-error / SDC resilience campaign.",
    )
    parser.add_argument(
        "--fit", type=float, nargs="+", default=list(base.fit_rates),
        help="FIT/Mbit rates to sweep",
    )
    parser.add_argument(
        "--protection", choices=PROTECTIONS, nargs="+",
        default=list(base.protections),
        help="protection configurations to compare",
    )
    parser.add_argument("--frames", type=int, default=base.n_frames,
                        help="campaign length in frames")
    parser.add_argument("--fps", type=float, default=base.fps)
    parser.add_argument("--accel", type=float, default=base.acceleration,
                        help="soft-error acceleration factor")
    parser.add_argument("--seed", type=int, default=base.seed,
                        help="seeds the gaze trajectory and fault schedules")
    add_slo_arguments(parser)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = SdcCampaignConfig(
            fit_rates=tuple(args.fit),
            protections=tuple(args.protection),
            n_frames=args.frames,
            fps=args.fps,
            acceleration=args.accel,
            seed=args.seed,
        )
    except ValueError as err:
        parser.error(str(err))
    # The campaign has no online event stream, so --slo here means
    # summary objectives only: thresholds over the final flat metrics.
    summary_objectives = None
    if args.slo is not None:
        from repro.obs.slo import SloConfigError, load_slo_config

        if args.slo == "default":
            parser.error("--slo default has no sdc objectives; pass a "
                         "*.slo.json with summary_objectives")
        try:
            slo_config = load_slo_config(args.slo)
        except SloConfigError as err:
            parser.error(str(err))
        if slo_config.objectives:
            parser.error("sdc --slo supports summary_objectives only "
                         "(the campaign has no online event stream)")
        summary_objectives = slo_config.summary_objectives
    report = run_sdc_campaign(config)
    print(format_sdc_report(report))
    if summary_objectives is not None:
        from repro.obs.slo import evaluate_summary, format_summary_verdicts

        rows = evaluate_summary(summary_objectives, sdc_summary_metrics(report))
        print("\n--- SLO verdicts ---\n")
        print(format_summary_verdicts(rows))
        if any(not row["ok"] for row in rows):
            return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
