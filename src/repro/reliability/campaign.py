"""SDC injection campaign: unprotected vs ABFT vs guard-only.

The campaign drives a *real* INT8 tracker datapath — quantized gaze
codes through two weight-stationary GEMM stages with 32-bit
accumulation and an inter-stage requantize shift, exactly the stored
representations :mod:`repro.reliability.softerror` knows how to flip —
over an oculomotor-model gaze trajectory.  Fault schedules are Poisson
draws from the FIT-rate config; the *same* schedule is replayed against
three protection configurations:

``unprotected``
    Faults flow straight to the output; every deviation beyond the
    quantization grid is a silent data corruption.
``abft``
    Both GEMMs run through :func:`repro.reliability.abft.abft_matmul`
    with checksums stored at operand-write time.  Accumulator upsets
    land in the augmented product (checksum registers included); weight
    upsets persist in the live store until a multi-error recompute
    triggers a scrub from the golden image.
``guard``
    No datapath protection; the
    :class:`repro.reliability.guard.PlausibilityGuard` gates the output
    (flag -> recompute once -> gaze reuse) and a fallback triggers a
    weight scrub.  Low-magnitude corruptions slip under the
    main-sequence velocity bound — the coverage gap this campaign
    quantifies.

Cycle overhead is *measured*, not asserted: the paper-scale predict
path is costed on the POLO accelerator with and without
``abft_protected`` (checksum rows/columns are real systolic work, see
:meth:`repro.hw.systolic.SystolicArray.abft_op`).

Everything is seeded; the same config reproduces the same report to the
digit, which is what the ``sdc-smoke`` CI job pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eye.motion import OculomotorConfig, OculomotorModel
from repro.nn.quantization import QuantSpec
from repro.reliability.abft import AbftOutcome, AbftStats, abft_matmul
from repro.reliability.guard import GazeVerdict, PlausibilityConfig, PlausibilityGuard
from repro.reliability.softerror import (
    FaultSite,
    FlipMode,
    SoftErrorConfig,
    SoftErrorEvent,
    SoftErrorModel,
    apply_event,
    flip_accumulator_bit,
    flip_int_code_bits,
)
from repro.utils.validation import check_positive

#: The three protection configurations the campaign compares.
PROTECTIONS = ("unprotected", "abft", "guard")


@dataclass(frozen=True)
class SdcCampaignConfig:
    """One campaign: a FIT sweep replayed against each protection."""

    fit_rates: tuple[float, ...] = (50.0, 200.0, 800.0)
    protections: tuple[str, ...] = PROTECTIONS
    n_frames: int = 300
    fps: float = 100.0
    #: Campaign-grade acceleration (stronger than the chaos default) so
    #: a few simulated seconds carry tens of upsets per FIT point.
    acceleration: float = 5e10
    #: Output deviation (degrees) beyond which a frame counts as SDC;
    #: sits just above the int8 quantization grid of the datapath.
    sdc_threshold_deg: float = 0.05
    pruning_ratio: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.fit_rates:
            raise ValueError("fit_rates must not be empty")
        for fit in self.fit_rates:
            check_positive("fit_rate", fit)
        for name in self.protections:
            if name not in PROTECTIONS:
                raise ValueError(
                    f"unknown protection {name!r}; choose from {PROTECTIONS}"
                )
        check_positive("n_frames", self.n_frames)
        check_positive("fps", self.fps)
        check_positive("acceleration", self.acceleration)
        check_positive("sdc_threshold_deg", self.sdc_threshold_deg)

    @property
    def duration_s(self) -> float:
        return self.n_frames / self.fps


@dataclass
class SdcRunResult:
    """Outcome of one (protection, FIT rate) cell."""

    protection: str
    fit_per_mbit: float
    frames: int
    injected: int
    corrupted_frames: int
    detected: int
    corrected: int
    recomputed: int
    guard_flagged: int
    guard_fallbacks: int
    scrubs: int
    escaped_sdc: int
    mean_error_deg: float
    p95_error_deg: float

    @property
    def coverage(self) -> float:
        """Fraction of corrupted frames that did NOT escape as SDC."""
        if self.corrupted_frames == 0:
            return 1.0
        return 1.0 - self.escaped_sdc / self.corrupted_frames

    def as_dict(self) -> dict:
        return {
            "protection": self.protection,
            "fit_per_mbit": self.fit_per_mbit,
            "frames": self.frames,
            "injected": self.injected,
            "corrupted_frames": self.corrupted_frames,
            "detected": self.detected,
            "corrected": self.corrected,
            "recomputed": self.recomputed,
            "guard_flagged": self.guard_flagged,
            "guard_fallbacks": self.guard_fallbacks,
            "scrubs": self.scrubs,
            "escaped_sdc": self.escaped_sdc,
            "coverage": self.coverage,
            "mean_error_deg": self.mean_error_deg,
            "p95_error_deg": self.p95_error_deg,
        }


@dataclass
class SdcReport:
    """Full campaign output plus the measured ABFT hardware overhead."""

    config: SdcCampaignConfig
    runs: list[SdcRunResult] = field(default_factory=list)
    unprotected_cycles: int = 0
    protected_cycles: int = 0
    abft_cycles: int = 0

    @property
    def cycle_overhead(self) -> float:
        """Relative predict-path cycle cost of ABFT protection."""
        if self.unprotected_cycles == 0:
            return 0.0
        return (
            self.protected_cycles - self.unprotected_cycles
        ) / self.unprotected_cycles

    def runs_for(self, protection: str) -> list[SdcRunResult]:
        return [r for r in self.runs if r.protection == protection]


# ----------------------------------------------------------------------
# The injected datapath
# ----------------------------------------------------------------------

class _Int8Tracker:
    """Two-stage INT8 gaze datapath with explicit stored representations.

    Stage 1 spreads the 2-vector of gaze codes across 8 hidden lanes
    (weight codes of 64, i.e. one set bit — every flip is visible at a
    known power of two); the 32-bit accumulators requantize by an
    arithmetic ``>> 6``; stage 2 folds the lanes back.  Clean end to
    end: ``out = round(gaze / a_scale) * a_scale`` — pure quantization,
    so any deviation beyond the grid is attributable to injection.
    """

    A_BITS = 2 * 8       # stage-1 activation codes resident in SRAM
    H_BITS = 8 * 8       # inter-stage codes resident in SRAM

    def __init__(self):
        self.spec = QuantSpec()
        cfg = PlausibilityConfig()
        self.a_scale = cfg.field_deg / 2.0 / self.spec.qmax
        w1 = np.zeros((2, 8), dtype=np.int8)
        w2 = np.zeros((8, 2), dtype=np.int8)
        for lane in range(8):
            w1[lane % 2, lane] = 64
            w2[lane, lane % 2] = 1
        self.golden_store = np.concatenate([w1.reshape(-1), w2.reshape(-1)])

    @staticmethod
    def views(store: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return store[:16].reshape(2, 8), store[16:].reshape(8, 2)

    def quantize_gaze(self, gaze: np.ndarray) -> np.ndarray:
        q = np.clip(
            np.round(np.asarray(gaze) / self.a_scale),
            -self.spec.qmax - 1,
            self.spec.qmax,
        )
        return q.astype(np.int8)

    def dequantize_out(self, acc: np.ndarray) -> np.ndarray:
        # Clean path: acc = 4 * a_codes, so /4 recovers the code grid.
        return acc.astype(np.float64) * (self.a_scale / 4.0)

    # ------------------------------------------------------------------
    @staticmethod
    def _stuck(event: SoftErrorEvent) -> "int | None":
        return event.stuck_value if event.mode is FlipMode.STUCK_AT else None

    def _split_act_events(self, events) -> tuple[list, list]:
        """Route activation upsets onto the a-codes or the h-codes by
        their offset within the resident activation image."""
        a_evs, h_evs = [], []
        span = self.A_BITS + self.H_BITS
        for e in events:
            (a_evs if e.bit_offset % span < self.A_BITS else h_evs).append(e)
        return a_evs, h_evs

    @staticmethod
    def _split_acc_events(events) -> tuple[list, list]:
        """Route accumulator upsets onto stage 1 or stage 2's registers
        (they time-share the same physical accumulator file)."""
        s1, s2 = [], []
        for e in events:
            (s1 if (e.bit_offset // 32) % 2 == 0 else s2).append(e)
        return s1, s2

    # ------------------------------------------------------------------
    def forward(
        self,
        gaze: np.ndarray,
        store: np.ndarray,
        act_events=(),
        acc_events=(),
    ) -> np.ndarray:
        """Unprotected frame computation under the given transient events."""
        w1, w2 = self.views(store)
        a_evs, h_evs = self._split_act_events(act_events)
        acc1_evs, acc2_evs = self._split_acc_events(acc_events)

        a = self.quantize_gaze(gaze)
        for e in a_evs:
            flip_int_code_bits(a, e.bit_offset, e.n_bits, self._stuck(e))
        acc1 = a.astype(np.int64)[None, :] @ w1.astype(np.int64)
        for e in acc1_evs:
            flip_accumulator_bit(acc1, e.bit_offset, e.n_bits, self._stuck(e))
        h = np.clip(acc1 >> 6, -self.spec.qmax - 1, self.spec.qmax).astype(np.int8)
        for e in h_evs:
            flip_int_code_bits(h, e.bit_offset, e.n_bits, self._stuck(e))
        acc2 = h.astype(np.int64) @ w2.astype(np.int64)
        for e in acc2_evs:
            flip_accumulator_bit(acc2, e.bit_offset, e.n_bits, self._stuck(e))
        return self.dequantize_out(acc2[0])

    def forward_abft(
        self,
        gaze: np.ndarray,
        store: np.ndarray,
        act_events,
        acc_events,
        stats: AbftStats,
    ) -> tuple[np.ndarray, bool, bool]:
        """ABFT-protected frame; returns ``(out, detected, scrubbed)``.

        Checksums are the ones written alongside the clean operands
        (golden weight row sums; the producer's copy of the activation
        codes), so corrupted *reads* mismatch them.  Recompute refetches
        clean operands, and a recompute caused by a corrupted weight
        store scrubs it from the golden image.
        """
        w1, w2 = self.views(store)
        g1, g2 = self.views(self.golden_store)
        a_evs, h_evs = self._split_act_events(act_events)
        acc1_evs, acc2_evs = self._split_acc_events(acc_events)

        a_clean = self.quantize_gaze(gaze)
        a = a_clean.copy()
        for e in a_evs:
            flip_int_code_bits(a, e.bit_offset, e.n_bits, self._stuck(e))

        def corrupt1(c_full: np.ndarray) -> None:
            for e in acc1_evs:
                flip_accumulator_bit(c_full, e.bit_offset, e.n_bits, self._stuck(e))

        acc1, outcome1 = abft_matmul(
            a[None, :],
            w1,
            a_check=a_clean.astype(np.int64)[None, :].sum(axis=0),
            b_check=g1.astype(np.int64).sum(axis=1),
            corrupt=corrupt1,
            recompute=lambda: a_clean.astype(np.int64)[None, :]
            @ g1.astype(np.int64),
            stats=stats,
        )
        h_clean = np.clip(
            acc1 >> 6, -self.spec.qmax - 1, self.spec.qmax
        ).astype(np.int8)
        h = h_clean.copy()
        for e in h_evs:
            flip_int_code_bits(h, e.bit_offset, e.n_bits, self._stuck(e))

        def corrupt2(c_full: np.ndarray) -> None:
            for e in acc2_evs:
                flip_accumulator_bit(c_full, e.bit_offset, e.n_bits, self._stuck(e))

        acc2, outcome2 = abft_matmul(
            h,
            w2,
            a_check=h_clean.astype(np.int64).sum(axis=0),
            b_check=g2.astype(np.int64).sum(axis=1),
            corrupt=corrupt2,
            recompute=lambda: h_clean.astype(np.int64) @ g2.astype(np.int64),
            stats=stats,
        )
        detected = (
            outcome1 is not AbftOutcome.CLEAN or outcome2 is not AbftOutcome.CLEAN
        )
        scrubbed = False
        if (
            AbftOutcome.RECOMPUTED in (outcome1, outcome2)
            and not np.array_equal(store, self.golden_store)
        ):
            store[:] = self.golden_store
            scrubbed = True
        return self.dequantize_out(acc2[0]), detected, scrubbed


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------

def default_sdc_campaign() -> SdcCampaignConfig:
    """The configuration ``python -m repro sdc`` runs by default."""
    return SdcCampaignConfig()


def _group_by_frame(
    events: tuple[SoftErrorEvent, ...], fps: float, n_frames: int
) -> dict[int, list[SoftErrorEvent]]:
    grouped: dict[int, list[SoftErrorEvent]] = {}
    for event in events:
        frame = min(int(event.t_s * fps), n_frames - 1)
        grouped.setdefault(frame, []).append(event)
    return grouped


def _run_cell(
    tracker: _Int8Tracker,
    gaze: np.ndarray,
    golden_out: np.ndarray,
    frame_events: dict[int, list[SoftErrorEvent]],
    protection: str,
    fit: float,
    config: SdcCampaignConfig,
) -> SdcRunResult:
    store = tracker.golden_store.copy()
    stats = AbftStats()
    guard = PlausibilityGuard(PlausibilityConfig(fps=config.fps))
    injected = corrupted = escaped = scrubs = 0
    deviations = np.zeros(len(gaze))

    for t in range(len(gaze)):
        events = frame_events.get(t, [])
        injected += len(events)
        act_events = [e for e in events if e.site is FaultSite.ACTIVATION]
        acc_events = [e for e in events if e.site is FaultSite.ACCUMULATOR]
        for e in events:
            if e.site is FaultSite.WEIGHT:
                apply_event(e, weight_codes=store)

        raw = tracker.forward(gaze[t], store, act_events, acc_events)
        frame_corrupt = not np.array_equal(raw, golden_out[t])
        corrupted += frame_corrupt

        if protection == "unprotected":
            out, silent = raw, True
        elif protection == "abft":
            out, detected, scrubbed = tracker.forward_abft(
                gaze[t], store, act_events, acc_events, stats
            )
            scrubs += scrubbed
            silent = not detected
        else:  # guard
            out, verdict = guard.check(
                raw, recompute=lambda: tracker.forward(gaze[t], store)
            )
            if verdict is GazeVerdict.FALLBACK and not np.array_equal(
                store, tracker.golden_store
            ):
                # The guard cannot localize the fault; a fallback is the
                # system's cue that state may be corrupted -> scrub.
                store[:] = tracker.golden_store
                scrubs += 1
            silent = verdict is not GazeVerdict.FALLBACK

        deviation = float(np.linalg.norm(out - golden_out[t]))
        deviations[t] = deviation
        if silent and deviation > config.sdc_threshold_deg:
            escaped += 1

    return SdcRunResult(
        protection=protection,
        fit_per_mbit=fit,
        frames=len(gaze),
        injected=injected,
        corrupted_frames=corrupted,
        detected=stats.detected,
        corrected=stats.corrected + stats.checksum_repaired,
        recomputed=stats.recomputed,
        guard_flagged=guard.flagged,
        guard_fallbacks=guard.fallbacks,
        scrubs=scrubs,
        escaped_sdc=escaped,
        mean_error_deg=float(deviations.mean()),
        p95_error_deg=float(np.percentile(deviations, 95)),
    )


def _abft_hardware_overhead(pruning_ratio: float) -> dict[str, int]:
    """Predict-path cycles with and without ABFT on the POLO accelerator."""
    from repro.core import GazeViTConfig, SaccadeDetector
    from repro.experiments.profiles import (
        PAPER_FRAME_SHAPE,
        PAPER_MAP_SHAPE,
        PAPER_POOL_M,
        pruned_vit_workload,
    )
    from repro.hw import PoloAcceleratorModel, polo_accelerator

    vit_ops = pruned_vit_workload(GazeViTConfig.paper(), pruning_ratio)
    saccade_ops = SaccadeDetector(PAPER_MAP_SHAPE).workload(PAPER_MAP_SHAPE)
    reports = {}
    for abft in (False, True):
        model = PoloAcceleratorModel(
            polo_accelerator(abft=abft),
            frame_shape=PAPER_FRAME_SHAPE,
            pool_m=PAPER_POOL_M,
        )
        reports[abft] = model.path_report("predict", saccade_ops, vit_ops)
    return {
        "unprotected_cycles": reports[False].cycles,
        "protected_cycles": reports[True].cycles,
        "abft_cycles": reports[True].abft_cycles,
    }


def run_sdc_campaign(config: "SdcCampaignConfig | None" = None) -> SdcReport:
    """Run the full FIT sweep; deterministic for a given config."""
    config = config or default_sdc_campaign()
    tracker = _Int8Tracker()
    track = OculomotorModel(
        OculomotorConfig(fps=config.fps), seed=config.seed
    ).generate(config.n_frames)
    gaze = track.gaze_deg
    golden_out = np.stack([tracker.forward(g, tracker.golden_store) for g in gaze])

    report = SdcReport(config=config, **_abft_hardware_overhead(config.pruning_ratio))
    for index, fit in enumerate(config.fit_rates):
        model = SoftErrorModel(
            SoftErrorConfig(
                fit_per_mbit=fit,
                acceleration=config.acceleration,
                seed=config.seed + 7919 * (index + 1),
            )
        )
        frame_events = _group_by_frame(
            model.schedule(config.duration_s), config.fps, config.n_frames
        )
        for protection in config.protections:
            report.runs.append(
                _run_cell(
                    tracker, gaze, golden_out, frame_events,
                    protection, fit, config,
                )
            )
    return report


def sdc_summary_metrics(report: SdcReport) -> dict[str, float]:
    """One flat metrics dict per campaign: the aggregate overhead plus
    per-protection worst-case cells.

    Shared by the ``repro.exp`` sdc runner, ``sdc --slo`` summary
    verdicts, and the bench history — all three gate on these names.
    """
    metrics: dict[str, float] = {
        "cycle_overhead": report.cycle_overhead,
        "injected_total": float(sum(r.injected for r in report.runs)),
    }
    for protection in report.config.protections:
        cells = report.runs_for(protection)
        metrics[f"{protection}_coverage_min"] = min(c.coverage for c in cells)
        metrics[f"{protection}_escaped_total"] = float(
            sum(c.escaped_sdc for c in cells)
        )
        metrics[f"{protection}_p95_error_deg"] = max(c.p95_error_deg for c in cells)
    return metrics


def format_sdc_report(report: SdcReport) -> str:
    """Human-readable campaign summary (stable across runs — CI diffs it)."""
    cfg = report.config
    lines = [
        "SDC resilience campaign",
        f"  frames: {cfg.n_frames} @ {cfg.fps:g} fps   seed: {cfg.seed}   "
        f"acceleration: {cfg.acceleration:g}x",
        f"  ABFT predict-path overhead: {report.cycle_overhead * 100:.2f}% "
        f"({report.unprotected_cycles} -> {report.protected_cycles} cycles, "
        f"{report.abft_cycles} on checksums)",
        "",
        f"  {'protection':<12} {'FIT/Mbit':>8} {'inj':>5} {'corrupt':>7} "
        f"{'det':>5} {'corr':>5} {'recomp':>6} {'flag':>5} {'fall':>5} "
        f"{'escaped':>7} {'coverage':>8} {'p95 deg':>8}",
    ]
    for run in report.runs:
        lines.append(
            f"  {run.protection:<12} {run.fit_per_mbit:>8g} {run.injected:>5} "
            f"{run.corrupted_frames:>7} {run.detected:>5} {run.corrected:>5} "
            f"{run.recomputed:>6} {run.guard_flagged:>5} {run.guard_fallbacks:>5} "
            f"{run.escaped_sdc:>7} {run.coverage:>8.3f} {run.p95_error_deg:>8.4f}"
        )
    return "\n".join(lines)
