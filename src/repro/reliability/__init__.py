"""Silicon soft-error injection, ABFT-protected inference, and SDC guards.

POLO's accelerator keeps weights and activations in two 128 KB on-chip
SRAMs feeding a 16 x 16 systolic array (paper §5.2) — exactly the
structures where soft errors (particle strikes, voltage droop in a
battery-powered headset) silently corrupt gaze estimates.  A corrupted
gaze estimate is not a crash: it is a wrong foveal placement the user
perceives, because the P95 tracking error sizes the foveal region via
Eq. 1.  This package closes that gap in three layers:

* :mod:`repro.reliability.softerror` — a deterministic, seeded soft-error
  model: FIT-rate-driven fault instants derived from the SRAM capacities,
  with single-bit, multi-bit-burst, and stuck-at flips applied at exact
  bit positions of int8 weight/activation codes and 32-bit accumulators.
* :mod:`repro.reliability.abft` — Huang–Abraham row/column-checksum
  algorithm-based fault tolerance around the matmul path: detect checksum
  mismatch, locate-and-correct single errors in place (bit-identical in
  the integer datapath), recompute the tile on multi-error.  The
  :class:`AbftGuard` installs into ``repro.nn``'s matmul hook so whole
  model forwards run protected; with no injected faults the output is
  bit-identical to the unprotected path.
* :mod:`repro.reliability.guard` — an end-to-end silent-data-corruption
  gate on tracker outputs: gaze jumps exceeding main-sequence saccade
  kinematics are physiologically implausible and trigger
  flag -> recompute-once -> fall-back-to-gaze-reuse.

``python -m repro sdc`` (:mod:`repro.reliability.cli`) sweeps FIT rates
and compares unprotected vs ABFT-protected vs guard-only configurations
on accuracy, detection coverage, and cycle overhead — the checksum
rows/columns are accounted as real systolic-array work, so protection
overhead shows up honestly in the accelerator's ``path_report``.
"""

from repro.reliability.abft import (
    AbftGuard,
    AbftOutcome,
    AbftStats,
    abft_matmul,
)
from repro.reliability.campaign import (
    SdcCampaignConfig,
    SdcReport,
    SdcRunResult,
    default_sdc_campaign,
    format_sdc_report,
    run_sdc_campaign,
)
from repro.reliability.guard import (
    GazeVerdict,
    PlausibilityConfig,
    PlausibilityGuard,
)
from repro.reliability.softerror import (
    FaultSite,
    FlipMode,
    SoftErrorConfig,
    SoftErrorEvent,
    SoftErrorModel,
    flip_accumulator_bit,
    flip_float32_bit,
    flip_int_code_bits,
)

__all__ = [
    "AbftGuard",
    "AbftOutcome",
    "AbftStats",
    "FaultSite",
    "FlipMode",
    "GazeVerdict",
    "PlausibilityConfig",
    "PlausibilityGuard",
    "SdcCampaignConfig",
    "SdcReport",
    "SdcRunResult",
    "SoftErrorConfig",
    "SoftErrorEvent",
    "SoftErrorModel",
    "abft_matmul",
    "default_sdc_campaign",
    "flip_accumulator_bit",
    "flip_float32_bit",
    "flip_int_code_bits",
    "format_sdc_report",
    "run_sdc_campaign",
]
