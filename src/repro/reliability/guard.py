"""Physiological plausibility gate on tracker outputs (SDC last line).

ABFT covers the matmul datapath, but a flipped weight bit that survives
until prediction, an IPU upset, or any fault outside the protected GEMMs
still reaches the application as a *plausible-looking* gaze sample.  The
eye itself bounds how fast that sample can move: saccade kinematics
follow the main sequence (``duration_ms = 2.2 * amplitude + 21``,
Robinson-style fit — the same constants :mod:`repro.eye.motion`
generates behaviour from), and with a minimum-jerk profile the peak
velocity exceeds the mean by at most 1.875x.  The largest in-field
saccade (25 deg) therefore peaks near ~613 deg/s; anything meaningfully
above that is not an eye movement, it is corruption.

The guard applies exactly the escalation the issue specifies: flag the
implausible jump, request **one** recompute, and if the recomputed
sample is still implausible fall back to gaze reuse (hold the last
accepted estimate) — the same degradation primitive POLO's reuse path
already makes cheap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.validation import check_positive

#: Peak-to-mean velocity ratio of a minimum-jerk displacement profile
#: (max of d/dtau [10 tau^3 - 15 tau^4 + 6 tau^5] = 15/8 at tau = 1/2).
MIN_JERK_PEAK_TO_MEAN = 1.875


class GazeVerdict(enum.Enum):
    """What the plausibility gate decided for one gaze sample."""

    PLAUSIBLE = "plausible"
    RECOMPUTED = "recomputed"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class PlausibilityConfig:
    """Main-sequence-derived bounds on frame-to-frame gaze motion.

    Defaults mirror :class:`repro.eye.motion.OculomotorConfig` so the
    gate is calibrated to the same oculomotor physiology the simulated
    users exhibit.  ``margin`` absorbs tracker noise riding on top of a
    legitimate peak-velocity frame; it is deliberately generous because
    a false trip costs one recompute, while a missed SDC reaches the
    renderer.
    """

    fps: float = 100.0
    field_deg: float = 22.0
    max_amplitude_deg: float = 25.0
    main_sequence_slope_ms: float = 2.2
    main_sequence_intercept_ms: float = 21.0
    peak_to_mean: float = MIN_JERK_PEAK_TO_MEAN
    margin: float = 1.25

    def __post_init__(self) -> None:
        check_positive("fps", self.fps)
        check_positive("field_deg", self.field_deg)
        check_positive("max_amplitude_deg", self.max_amplitude_deg)
        check_positive("peak_to_mean", self.peak_to_mean)
        check_positive("margin", self.margin)

    @property
    def max_velocity_deg_s(self) -> float:
        """Peak angular velocity of the largest main-sequence saccade."""
        duration_s = (
            self.main_sequence_intercept_ms
            + self.main_sequence_slope_ms * self.max_amplitude_deg
        ) / 1000.0
        mean = self.max_amplitude_deg / duration_s
        return mean * self.peak_to_mean * self.margin

    @property
    def max_jump_deg(self) -> float:
        """Largest physiologically plausible frame-to-frame displacement."""
        return self.max_velocity_deg_s / self.fps

    @property
    def field_limit_deg(self) -> float:
        """Per-axis bound on gaze position (eyes stay in the FOV)."""
        return self.field_deg / 2.0 * self.margin


class PlausibilityGuard:
    """Stateful gaze-sample gate: flag -> recompute once -> gaze reuse.

    Feed every tracker output through :meth:`check`.  The guard keeps
    the last *accepted* gaze as its reference, so a corrupted sample
    never poisons subsequent plausibility judgements.  Counters are
    plain ints and the whole guard snapshots via ``state_dict`` /
    ``load_state`` so :mod:`repro.recover` restores it bit-identically.
    """

    def __init__(self, config: "PlausibilityConfig | None" = None):
        self.config = config or PlausibilityConfig()
        self._last: "np.ndarray | None" = None
        self.checks = 0
        self.flagged = 0
        self.recomputes = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------
    def plausible(self, gaze: np.ndarray, frames: float = 1.0) -> bool:
        """Is ``gaze`` reachable from the last accepted sample?

        ``frames`` is the elapsed frame count since that sample — the
        velocity bound scales linearly with time, so a sample arriving
        after a two-frame gap may legitimately jump twice as far."""
        gaze = np.asarray(gaze, dtype=np.float64)
        if not np.isfinite(gaze).all():
            return False
        if np.abs(gaze).max() > self.config.field_limit_deg:
            return False
        if self._last is None:
            return True
        jump = float(np.linalg.norm(gaze - self._last))
        return jump <= self.config.max_jump_deg * max(frames, 1.0)

    def check(
        self,
        gaze: np.ndarray,
        recompute: "Callable[[], np.ndarray] | None" = None,
        frames: float = 1.0,
    ) -> tuple[np.ndarray, GazeVerdict]:
        """Gate one tracker output; returns ``(accepted_gaze, verdict)``.

        ``recompute`` re-runs the prediction (presumably after the
        transient cleared or a scrub); it is called at most once.  With
        no recompute available, an implausible sample goes straight to
        gaze reuse.  The first sample after construction or
        :meth:`reset` is accepted unconditionally unless it is
        non-finite or out of field (there is no reference to judge a
        jump against).
        """
        self.checks += 1
        gaze = np.asarray(gaze, dtype=np.float64)
        if self.plausible(gaze, frames):
            self._last = gaze.copy()
            return gaze, GazeVerdict.PLAUSIBLE
        self.flagged += 1
        if recompute is not None:
            self.recomputes += 1
            retry = np.asarray(recompute(), dtype=np.float64)
            if self.plausible(retry, frames):
                self._last = retry.copy()
                return retry, GazeVerdict.RECOMPUTED
        self.fallbacks += 1
        if self._last is not None:
            # Gaze reuse: hold the last accepted estimate (Algorithm 1's
            # cheap path) rather than ship a corrupted one.
            return self._last.copy(), GazeVerdict.FALLBACK
        # No history at all: clamp into the field so downstream foveation
        # at least stays on screen.
        limit = self.config.field_limit_deg
        held = np.clip(np.nan_to_num(gaze, nan=0.0, posinf=limit, neginf=-limit),
                       -limit, limit)
        self._last = held.copy()
        return held, GazeVerdict.FALLBACK

    def reset(self) -> None:
        """Drop the gaze reference (e.g. after a blink or session swap);
        counters are cumulative and survive."""
        self._last = None

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, int]:
        return {
            "checks": self.checks,
            "flagged": self.flagged,
            "recomputes": self.recomputes,
            "fallbacks": self.fallbacks,
        }

    def state_dict(self) -> dict:
        return {
            "last": None if self._last is None else [float(v) for v in self._last],
            "counters": self.as_dict(),
        }

    def load_state(self, state: dict) -> None:
        last = state["last"]
        self._last = None if last is None else np.asarray(last, dtype=np.float64)
        counters = state["counters"]
        self.checks = int(counters["checks"])
        self.flagged = int(counters["flagged"])
        self.recomputes = int(counters["recomputes"])
        self.fallbacks = int(counters["fallbacks"])
