"""Deterministic silicon soft-error model for the POLO accelerator.

The fault population is derived from the real storage the paper puts on
chip (§5.2): a 128 KB weight SRAM, a 128 KB activation/metadata SRAM,
and the 16x16 systolic array's 32-bit accumulator file.  Fault instants
follow a Poisson process whose rate comes from a FIT-per-Mbit figure —
the unit reliability teams actually quote for SRAM — scaled by an
acceleration factor so second-long simulations see events at all (a raw
200 FIT/Mbit part sees ~one upset per three hundred years).

Everything is seeded: the same config and seed produce the same event
schedule, the same bit offsets, and therefore the same corrupted values,
which is what makes the SDC campaign and the CI smoke job exact.

Bit-flip helpers operate at real bit positions of the stored
representation: int8 weight/activation *codes* (what the SRAM holds in
the INT8 datapath, via :mod:`repro.nn.quantization`), two's-complement
32-bit accumulator words, and IEEE-754 float32 words.  All three support
single-bit, multi-bit burst, and stuck-at modes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_probability

#: One Mbit, in bits, as reliability datasheets count it (2**20).
BITS_PER_MBIT = 1 << 20

#: Seconds in the 10**9 device-hours that define one FIT.
FIT_HOURS_S = 1e9 * 3600.0


class FaultSite(enum.Enum):
    """Which physical structure the upset lands in."""

    WEIGHT = "weight"
    ACTIVATION = "activation"
    ACCUMULATOR = "accumulator"


class FlipMode(enum.Enum):
    """How the upset manifests."""

    SINGLE_BIT = "single_bit"
    BURST = "burst"
    STUCK_AT = "stuck_at"


@dataclass(frozen=True)
class SoftErrorEvent:
    """One scheduled upset: when, where, and which bits."""

    t_s: float
    site: FaultSite
    mode: FlipMode
    bit_offset: int
    n_bits: int = 1
    stuck_value: "int | None" = None

    def __post_init__(self) -> None:
        if self.t_s < 0:
            raise ValueError(f"t_s must be >= 0, got {self.t_s!r}")
        if self.bit_offset < 0:
            raise ValueError(f"bit_offset must be >= 0, got {self.bit_offset!r}")
        check_positive("n_bits", self.n_bits)
        if self.mode is FlipMode.STUCK_AT and self.stuck_value not in (0, 1):
            raise ValueError("stuck-at events need stuck_value 0 or 1")


@dataclass(frozen=True)
class SoftErrorConfig:
    """FIT-rate-driven soft-error population over the on-chip storage.

    ``fit_per_mbit`` is the per-Mbit failure-in-time rate (events per
    10**9 device-hours); typical 16 nm SRAM sits in the hundreds.
    ``acceleration`` compresses wall time so simulated seconds carry a
    workable number of events — reported rates stay honest because the
    derivation is explicit in :attr:`events_per_second`.
    """

    fit_per_mbit: float = 200.0
    acceleration: float = 5e9
    weight_sram_kb: float = 128.0
    activation_sram_kb: float = 128.0
    accumulator_bits: int = 16 * 16 * 32
    p_single: float = 0.90
    p_burst: float = 0.08
    p_stuck: float = 0.02
    burst_bits: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("fit_per_mbit", self.fit_per_mbit, strict=False)
        check_positive("acceleration", self.acceleration)
        check_positive("weight_sram_kb", self.weight_sram_kb)
        check_positive("activation_sram_kb", self.activation_sram_kb)
        check_positive("accumulator_bits", self.accumulator_bits)
        check_probability("p_single", self.p_single)
        check_probability("p_burst", self.p_burst)
        check_probability("p_stuck", self.p_stuck)
        total = self.p_single + self.p_burst + self.p_stuck
        if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-9):
            raise ValueError(
                f"mode probabilities must sum to 1, got {total!r} "
                f"(single={self.p_single}, burst={self.p_burst}, "
                f"stuck={self.p_stuck})"
            )
        if self.burst_bits < 2:
            raise ValueError(f"burst_bits must be >= 2, got {self.burst_bits!r}")

    @classmethod
    def inactive(cls) -> "SoftErrorConfig":
        """A config that schedules no events (the chaos default)."""
        return cls(fit_per_mbit=0.0)

    @property
    def active(self) -> bool:
        return self.fit_per_mbit > 0.0

    @property
    def weight_bits(self) -> int:
        return int(self.weight_sram_kb * 1024) * 8

    @property
    def activation_bits(self) -> int:
        return int(self.activation_sram_kb * 1024) * 8

    @property
    def total_bits(self) -> int:
        return self.weight_bits + self.activation_bits + self.accumulator_bits

    @property
    def total_mbits(self) -> float:
        return self.total_bits / BITS_PER_MBIT

    @property
    def events_per_second(self) -> float:
        """Accelerated Poisson rate: FIT/Mbit x Mbits / (1e9 h) x accel."""
        return self.fit_per_mbit * self.total_mbits / FIT_HOURS_S * self.acceleration

    def site_bits(self, site: FaultSite) -> int:
        if site is FaultSite.WEIGHT:
            return self.weight_bits
        if site is FaultSite.ACTIVATION:
            return self.activation_bits
        return self.accumulator_bits


_SITES = (FaultSite.WEIGHT, FaultSite.ACTIVATION, FaultSite.ACCUMULATOR)
_MODES = (FlipMode.SINGLE_BIT, FlipMode.BURST, FlipMode.STUCK_AT)


class SoftErrorModel:
    """Seeded generator of :class:`SoftErrorEvent` schedules.

    Sites are weighted by their bit capacity — a weight-SRAM bit is as
    likely to flip as an activation-SRAM bit, and the tiny accumulator
    file is hit proportionally rarely (but with outsized consequence,
    since an accumulator holds a full dot product).
    """

    def __init__(self, config: SoftErrorConfig, seed: "int | None" = None):
        self.config = config
        self.seed = config.seed if seed is None else seed

    def schedule(
        self, duration_s: float, start_s: float = 0.0
    ) -> tuple[SoftErrorEvent, ...]:
        """All events in ``[start_s, start_s + duration_s)``, time-ordered."""
        check_positive("duration_s", duration_s)
        rate = self.config.events_per_second
        if rate <= 0.0:
            return ()
        rng = np.random.default_rng(self.seed)
        site_p = np.array(
            [self.config.site_bits(s) for s in _SITES], dtype=np.float64
        )
        site_p /= site_p.sum()
        mode_p = (self.config.p_single, self.config.p_burst, self.config.p_stuck)
        events: list[SoftErrorEvent] = []
        t = start_s
        end = start_s + duration_s
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= end:
                return tuple(events)
            site = _SITES[int(rng.choice(len(_SITES), p=site_p))]
            mode = _MODES[int(rng.choice(len(_MODES), p=mode_p))]
            n_bits = self.config.burst_bits if mode is FlipMode.BURST else 1
            stuck = int(rng.integers(2)) if mode is FlipMode.STUCK_AT else None
            events.append(
                SoftErrorEvent(
                    t_s=t,
                    site=site,
                    mode=mode,
                    bit_offset=int(rng.integers(self.config.site_bits(site))),
                    n_bits=n_bits,
                    stuck_value=stuck,
                )
            )


def _set_bit(raw: int, bit: int, stuck_value: "int | None") -> int:
    """XOR-flip a bit, or force it to ``stuck_value`` when given."""
    mask = 1 << bit
    if stuck_value is None:
        return raw ^ mask
    if stuck_value:
        return raw | mask
    return raw & ~mask


def flip_int_code_bits(
    codes: np.ndarray,
    bit_offset: int,
    n_bits: int = 1,
    stuck_value: "int | None" = None,
) -> np.ndarray:
    """Flip bits of int8 quantized codes in place (SRAM contents).

    ``bit_offset`` addresses the flattened byte image of the tensor;
    bursts run over consecutive bits and wrap at the end of the tensor.
    Returns ``codes`` for chaining.
    """
    if codes.dtype != np.int8:
        raise TypeError(f"codes must be int8, got {codes.dtype}")
    flat = np.reshape(codes, -1).view(np.uint8)
    total = flat.size * 8
    for i in range(n_bits):
        byte, bit = divmod((bit_offset + i) % total, 8)
        flat[byte] = np.uint8(_set_bit(int(flat[byte]), bit, stuck_value))
    return codes


def flip_accumulator_bit(
    acc: np.ndarray,
    bit_offset: int,
    n_bits: int = 1,
    stuck_value: "int | None" = None,
) -> np.ndarray:
    """Flip bits of the accumulator file in place.

    Accumulators are physically 32-bit two's-complement words (the
    systolic array's output registers); the model carries them as int64
    so numpy matmuls don't overflow, and flips address the low 32 bits
    of each word exactly as the hardware would see them.
    """
    if not np.issubdtype(acc.dtype, np.integer):
        raise TypeError(f"accumulators must be an integer array, got {acc.dtype}")
    flat = np.reshape(acc, -1)
    total = flat.size * 32
    for i in range(n_bits):
        word, bit = divmod((bit_offset + i) % total, 32)
        raw = _set_bit(int(flat[word]) & 0xFFFFFFFF, bit, stuck_value)
        if raw >= 1 << 31:
            raw -= 1 << 32
        flat[word] = raw
    return acc


def flip_float32_bit(
    arr: np.ndarray,
    bit_offset: int,
    n_bits: int = 1,
    stuck_value: "int | None" = None,
) -> np.ndarray:
    """Flip bits of an IEEE-754 float32 tensor in place (fp datapath)."""
    if arr.dtype != np.float32:
        raise TypeError(f"array must be float32, got {arr.dtype}")
    flat = np.reshape(arr, -1).view(np.uint32)
    total = flat.size * 32
    for i in range(n_bits):
        word, bit = divmod((bit_offset + i) % total, 32)
        flat[word] = np.uint32(_set_bit(int(flat[word]), bit, stuck_value))
    return arr


def apply_event(
    event: SoftErrorEvent,
    *,
    weight_codes: "np.ndarray | None" = None,
    activation_codes: "np.ndarray | None" = None,
    accumulator: "np.ndarray | None" = None,
) -> bool:
    """Route an event to the live array backing its site.

    Offsets are wrapped modulo the live array's bit footprint — the
    scheduled offset addresses the full SRAM, of which the resident tile
    is the active subset (a strike outside the live footprint would be
    overwritten before use; wrapping keeps every scheduled event
    observable, which is what a detection-coverage campaign needs).
    Returns False when the event's site has no array to hit.
    """
    stuck = event.stuck_value if event.mode is FlipMode.STUCK_AT else None
    if event.site is FaultSite.WEIGHT and weight_codes is not None:
        flip_int_code_bits(weight_codes, event.bit_offset, event.n_bits, stuck)
        return True
    if event.site is FaultSite.ACTIVATION and activation_codes is not None:
        flip_int_code_bits(activation_codes, event.bit_offset, event.n_bits, stuck)
        return True
    if event.site is FaultSite.ACCUMULATOR and accumulator is not None:
        flip_accumulator_bit(accumulator, event.bit_offset, event.n_bits, stuck)
        return True
    return False
