"""A small reverse-mode automatic-differentiation engine over numpy.

This is the training substrate for POLOViT, the saccade RNN, and every
learned baseline.  Design goals, in order: correctness, reviewability,
and enough speed to train compact models in tests.  The engine builds a
dynamic graph only when gradients are actually required (any input has
``requires_grad`` and grad mode is enabled), so the pure-inference paths
used by the system-level simulations pay almost no overhead beyond numpy.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_GRAD_ENABLED = True

#: Installed matmul hook (see :func:`matmul_guard`).  ``None`` keeps the
#: product path a plain ``a @ b`` with zero overhead.
_MATMUL_GUARD: "Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray] | None" = None


@contextlib.contextmanager
def matmul_guard(guard):
    """Install a hook over every ``Tensor @ Tensor`` product.

    The hook is called as ``guard(a, b, out)`` with the raw operand and
    product arrays and must return the product to use — the same ``out``
    object when nothing is wrong (which keeps the guarded path
    bit-identical to the unguarded one), or a corrected/recomputed array.
    This is the install point for algorithm-based fault tolerance
    (:class:`repro.reliability.AbftGuard`): every matmul of a model
    forward — attention scores, MLPs, patch embeddings — runs through
    the checksum verifier without the layers knowing.

    Guards nest lexically; the previous guard is restored on exit.
    """
    global _MATMUL_GUARD
    previous = _MATMUL_GUARD
    _MATMUL_GUARD = guard
    try:
        yield guard
    finally:
        _MATMUL_GUARD = previous


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the context (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from extent 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype == np.float64 or value.dtype == np.float32:
            return value
        return value.astype(np.float64)
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array plus an optional gradient and backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: "str | None" = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: "np.ndarray | None" = None
        self._backward: "Callable[[np.ndarray], None] | None" = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        tag = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{tag})"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple,
        backward: "Callable[[np.ndarray], None] | None",
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: "np.ndarray | None" = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free interior gradients/graph references promptly.
                if node is not self:
                    node._backward = None
                    node._parents = ()
                    node.grad = None

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _to_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-_to_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return _to_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = _to_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _to_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _to_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = _to_tensor(other)
        out_data = self.data @ other.data
        if _MATMUL_GUARD is not None:
            out_data = _MATMUL_GUARD(self.data, other.data, out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.einsum("...,j->...j", grad, other.data) if grad.ndim else np.outer(grad, other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.einsum("i,...j->...ij", self.data, grad) if grad.ndim > 1 else np.outer(self.data, grad)
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(in_shape) for a in axes)
                g = np.expand_dims(g, axes)
            self._accumulate(np.broadcast_to(g, in_shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        in_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(in_shape) for a in axes)
                g = np.expand_dims(g, axes)
                expanded = np.expand_dims(out_data, axes)
            mask = self.data == expanded
            counts = mask.sum(
                axis=axis if axis is not None else None,
                keepdims=True,
            )
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Pointwise nonlinearities (primitive ops; composites live in functional)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)


def _to_tensor(value) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each."""
    tensors = [_to_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_to_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise select; ``condition`` is a plain bool array."""
    a, b = _to_tensor(a), _to_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(np.where(cond, grad, 0.0), a.data.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(np.where(cond, 0.0, grad), b.data.shape))

    return Tensor._make(out_data, (a, b), backward)
