"""Module system and standard layers.

``Module`` provides parameter discovery (recursively through attributes,
lists, and dicts), train/eval mode switching, and state-dict
serialization — the minimal subset of the familiar torch API that the
rest of the library relies on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor
from repro.utils.rng import default_rng


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self.training = True

    # -- forward ---------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter discovery ----------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            yield from _walk_parameters(full, value)

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).items():
            yield from _walk_modules(value[1])

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- mode switching -----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- gradients ----------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dict -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} does not match {param.data.shape}"
                )
            param.data = value.copy()


def _walk_parameters(prefix: str, value) -> Iterator[tuple[str, Tensor]]:
    if isinstance(value, Tensor):
        if value.requires_grad:
            yield prefix, value
    elif isinstance(value, Module):
        yield from value.named_parameters(prefix + ".")
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _walk_parameters(f"{prefix}.{i}", item)
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _walk_parameters(f"{prefix}.{key}", item)


def _walk_modules(value) -> Iterator[Module]:
    if isinstance(value, Module):
        yield value
        for inner in vars(value).values():
            yield from _walk_modules(inner)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _walk_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _walk_modules(item)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight shape (out, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed=None):
        super().__init__()
        rng = default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.xavier_uniform((out_features, in_features), in_features, out_features, rng),
            requires_grad=True,
            name="weight",
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True, name="bias") if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution over (N, C, H, W) inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        seed=None,
    ):
        super().__init__()
        rng = default_rng(seed)
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            ),
            requires_grad=True,
            name="weight",
        )
        self.bias = (
            Tensor(np.zeros(out_channels), requires_grad=True, name="bias") if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class LayerNorm(Module):
    """Layer normalization over the trailing feature dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Tensor(np.ones(dim), requires_grad=True, name="weight")
        self.bias = Tensor(np.zeros(dim), requires_grad=True, name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; inert in eval mode."""

    def __init__(self, p: float = 0.1, seed=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, self.training)


class MaxPool2d(Module):
    def __init__(self, kernel: int, stride: "int | None" = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel: int, stride: "int | None" = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
