"""A compact reverse-mode autograd framework over numpy.

This package is the training and inference substrate for every learned
component in the reproduction: POLOViT, the saccade RNN, and the learned
baselines.  It provides tensors with automatic differentiation, standard
layers, ViT blocks with token pruning, optimizers, and INT8 post-training
quantization.
"""

from repro.nn import functional
from repro.nn.attention import AttentionStats, MultiHeadSelfAttention, TokenFilter
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.optim import Adam, CosineSchedule, Optimizer, SGD
from repro.nn.quantization import ActivationQuantizer, QuantSpec, quantize_weights
from repro.nn.recurrent import LeakyRecurrentCell
from repro.nn.serialization import PersistenceError, load_weights, save_weights
from repro.nn.tensor import Tensor, concatenate, matmul_guard, no_grad, stack, where
from repro.nn.transformer import (
    BatchTokenTrace,
    PatchEmbed,
    TokenTrace,
    TransformerBlock,
    ViTEncoder,
)

__all__ = [
    "functional",
    "AttentionStats",
    "MultiHeadSelfAttention",
    "TokenFilter",
    "AvgPool2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GELU",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "Module",
    "ReLU",
    "Sequential",
    "Tanh",
    "Adam",
    "CosineSchedule",
    "Optimizer",
    "SGD",
    "ActivationQuantizer",
    "QuantSpec",
    "quantize_weights",
    "LeakyRecurrentCell",
    "PersistenceError",
    "load_weights",
    "save_weights",
    "Tensor",
    "concatenate",
    "matmul_guard",
    "no_grad",
    "stack",
    "where",
    "BatchTokenTrace",
    "PatchEmbed",
    "TokenTrace",
    "TransformerBlock",
    "ViTEncoder",
]
