"""Stateless differentiable operations built on the Tensor primitives.

Composite functions here are expressed in terms of the primitive ops in
:mod:`repro.nn.tensor` so their gradients come for free; a few (softmax,
layer_norm, conv2d) implement fused forward/backward passes for speed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.tensor import Tensor, _to_tensor, _unbroadcast

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def relu(x: Tensor) -> Tensor:
    return _to_tensor(x).relu()


def tanh(x: Tensor) -> Tensor:
    return _to_tensor(x).tanh()


def sigmoid(x: Tensor) -> Tensor:
    return _to_tensor(x).sigmoid()


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation (matches the SFU's piecewise model)."""
    x = _to_tensor(x)
    data = x.data
    inner = _SQRT_2_OVER_PI * (data + 0.044715 * data**3)
    t = np.tanh(inner)
    out_data = 0.5 * data * (1.0 + t)

    def backward(grad: np.ndarray) -> None:
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * data**2)
        local = 0.5 * (1.0 + t) + 0.5 * data * (1.0 - t**2) * d_inner
        x._accumulate(grad * local)

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax with a fused backward pass."""
    x = _to_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _to_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Stable log-sum-exp; the smooth-max used by the performance-aware loss."""
    x = _to_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    exp = np.exp(x.data - m)
    total = exp.sum(axis=axis, keepdims=True)
    out_data = np.log(total) + m
    soft = exp / total
    if not keepdims:
        out_data = np.squeeze(out_data, axis=axis)

    def backward(grad: np.ndarray) -> None:
        g = grad if keepdims else np.expand_dims(grad, axis)
        x._accumulate(g * soft)

    return Tensor._make(out_data, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension with affine parameters."""
    x, weight, bias = _to_tensor(x), _to_tensor(weight), _to_tensor(bias)
    mean = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mean
    var = (centered**2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = centered * inv_std
    out_data = normalized * weight.data + bias.data
    dim = x.data.shape[-1]

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate(
                _unbroadcast(grad * normalized, weight.data.shape)
            )
        if bias.requires_grad:
            bias._accumulate(_unbroadcast(grad, bias.data.shape))
        if x.requires_grad:
            g = grad * weight.data
            g_mean = g.mean(axis=-1, keepdims=True)
            g_dot = (g * normalized).mean(axis=-1, keepdims=True)
            x._accumulate(inv_std * (g - g_mean - normalized * g_dot))
        _ = dim  # retained for clarity of the derivation

    return Tensor._make(out_data, (x, weight, bias), backward)


def linear(x: Tensor, weight: Tensor, bias: "Tensor | None" = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (weight is (out, in))."""
    out = _to_tensor(x) @ _to_tensor(weight).swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return _to_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = _to_tensor(x)
    mask = (rng.random(x.data.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


# ----------------------------------------------------------------------
# Convolution / pooling (im2col based)
# ----------------------------------------------------------------------

def _im2col(data: np.ndarray, kh: int, kw: int, stride: int, padding: int):
    """Unfold (N, C, H, W) into (N, out_h, out_w, C*kh*kw) patches."""
    n, c, h, w = data.shape
    if padding:
        data = np.pad(data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (data.shape[2] - kh) // stride + 1
    out_w = (data.shape[3] - kw) // stride + 1
    s0, s1, s2, s3 = data.strides
    windows = np.lib.stride_tricks.as_strided(
        data,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return cols, out_h, out_w


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: "Tensor | None" = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution; x is (N, C, H, W), weight is (O, C, kh, kw)."""
    x, weight = _to_tensor(x), _to_tensor(weight)
    n, c, h, w = x.data.shape
    o, c_w, kh, kw = weight.data.shape
    if c != c_w:
        raise ValueError(f"input channels {c} do not match weight channels {c_w}")
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride, padding)
    w_mat = weight.data.reshape(o, -1)
    out_data = cols @ w_mat.T  # (N, out_h, out_w, O)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = out_data.transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        g = grad.transpose(0, 2, 3, 1)  # (N, out_h, out_w, O)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=(0, 1, 2)))
        if weight.requires_grad:
            gw = np.einsum("nhwo,nhwk->ok", g, cols)
            weight._accumulate(gw.reshape(weight.data.shape))
        if x.requires_grad:
            gcols = g @ w_mat  # (N, out_h, out_w, C*kh*kw)
            gx = np.zeros(
                (n, c, h + 2 * padding, w + 2 * padding), dtype=x.data.dtype
            )
            gcols = gcols.reshape(n, out_h, out_w, c, kh, kw)
            for i in range(kh):
                for j in range(kw):
                    gx[
                        :,
                        :,
                        i : i + out_h * stride : stride,
                        j : j + out_w * stride : stride,
                    ] += gcols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            if padding:
                gx = gx[:, :, padding:-padding, padding:-padding]
            x._accumulate(gx)

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: "int | None" = None) -> Tensor:
    """Max pooling over square windows; x is (N, C, H, W)."""
    x = _to_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.data.shape
    merged = x.data.reshape(n * c, 1, h, w)
    cols, out_h, out_w = _im2col(merged, kernel, kernel, stride, 0)
    cols = cols.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = cols.argmax(axis=-1)
    out_data = np.take_along_axis(cols, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        gx = np.zeros_like(x.data)
        ki, kj = np.divmod(argmax, kernel)
        ii = (np.arange(out_h) * stride)[None, None, :, None] + ki
        jj = (np.arange(out_w) * stride)[None, None, None, :] + kj
        nn_idx = np.arange(n)[:, None, None, None]
        cc_idx = np.arange(c)[None, :, None, None]
        np.add.at(gx, (nn_idx, cc_idx, ii, jj), grad)
        x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: "int | None" = None) -> Tensor:
    """Average pooling over square windows; x is (N, C, H, W)."""
    x = _to_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.data.shape
    merged = x.data.reshape(n * c, 1, h, w)
    cols, out_h, out_w = _im2col(merged, kernel, kernel, stride, 0)
    out_data = cols.mean(axis=-1).reshape(n, c, out_h, out_w)
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        gx = np.zeros_like(x.data)
        g = grad * scale
        for i in range(kernel):
            for j in range(kernel):
                gx[
                    :,
                    :,
                    i : i + out_h * stride : stride,
                    j : j + out_w * stride : stride,
                ] += g
        x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------

def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error over all elements."""
    pred = _to_tensor(pred)
    target = _to_tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, target, pos_weight: float = 1.0) -> Tensor:
    """Numerically stable BCE on logits; optional positive-class weighting."""
    logits = _to_tensor(logits)
    target_t = _to_tensor(target).detach()
    z = logits
    # max(z, 0) - z * y + log(1 + exp(-|z|)), weighted on positives.
    max_part = z.relu()
    abs_z = z.abs()
    log_part = (Tensor(1.0) + (-abs_z).exp()).log()
    per_sample = max_part - z * target_t + log_part
    if pos_weight != 1.0:
        weights = Tensor(1.0 + (pos_weight - 1.0) * target_t.data)
        per_sample = per_sample * weights
    return per_sample.mean()
