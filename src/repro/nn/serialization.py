"""Saving and loading model weights as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module


def save_weights(model: Module, path: "str | os.PathLike") -> None:
    """Write the model's state dict to an ``.npz`` archive."""
    state = model.state_dict()
    np.savez(path, **state)


def load_weights(model: Module, path: "str | os.PathLike") -> None:
    """Load an ``.npz`` archive produced by :func:`save_weights`."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
