"""Saving and loading model weights as ``.npz`` archives.

Loading is *strict* by default: the archive must carry exactly the
model's parameter set, every tensor must match in shape and dtype, and
no tensor may contain NaN/Inf.  Violations raise
:class:`PersistenceError` naming the offending tensor — a corrupt or
mismatched weight file fails at load time, not as silent garbage at
inference time.
"""

from __future__ import annotations

import os
import zipfile

import numpy as np

from repro.nn.layers import Module


class PersistenceError(ValueError):
    """A weight archive or model directory failed validation."""


def save_weights(model: Module, path: "str | os.PathLike") -> None:
    """Write the model's state dict to an ``.npz`` archive."""
    state = model.state_dict()
    np.savez(path, **state)


def _read_archive(path: "str | os.PathLike") -> dict[str, np.ndarray]:
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, OSError, KeyError, EOFError) as err:
        raise PersistenceError(
            f"corrupt or truncated weight archive {os.fspath(path)}: {err}"
        ) from err


def load_weights(
    model: Module, path: "str | os.PathLike", strict: bool = True
) -> None:
    """Load an ``.npz`` archive produced by :func:`save_weights`.

    With ``strict=True`` (the default) the archive's key set must equal
    the model's parameter set exactly.  ``strict=False`` loads the
    intersection (a deliberate partial restore, e.g. a backbone);
    shape/dtype/finiteness are validated either way.
    """
    state = _read_archive(path)
    own = dict(model.named_parameters())
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if strict and (missing or unexpected):
        raise PersistenceError(
            f"weight archive {os.fspath(path)} does not match the model: "
            f"missing={missing}, unexpected={unexpected}"
        )
    for name, param in own.items():
        if name not in state:
            continue
        value = state[name]
        if value.shape != param.data.shape:
            raise PersistenceError(
                f"tensor {name!r} in {os.fspath(path)}: shape {value.shape} "
                f"does not match the model's {param.data.shape}"
            )
        if value.dtype != param.data.dtype:
            raise PersistenceError(
                f"tensor {name!r} in {os.fspath(path)}: dtype {value.dtype} "
                f"does not match the model's {param.data.dtype}"
            )
        if np.issubdtype(value.dtype, np.floating) and not np.all(
            np.isfinite(value)
        ):
            bad = int(np.size(value) - np.count_nonzero(np.isfinite(value)))
            raise PersistenceError(
                f"tensor {name!r} in {os.fspath(path)} contains {bad} "
                "non-finite value(s) (NaN/Inf)"
            )
        param.data = value.copy()
