"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer over a flat list of parameters."""

    def __init__(self, parameters: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``."""
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = math.sqrt(total)
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.parameters:
                if p.grad is not None:
                    p.grad = p.grad * scale
        return norm


class SGD(Optimizer):
    """SGD with optional classical momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW-style)."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data = p.data - self.lr * update


class CosineSchedule:
    """Cosine decay from ``lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.min_lr = min_lr
        self.total_steps = total_steps
        self._t = 0

    def step(self) -> float:
        self._t = min(self._t + 1, self.total_steps)
        frac = self._t / self.total_steps
        lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * frac))
        self.optimizer.lr = lr
        return lr
