"""Vision-transformer building blocks: patch embedding, encoder blocks,
and a token-prunable encoder used by POLOViT (paper Fig. 7).

The encoder reports a :class:`TokenTrace` describing how many tokens each
block processed — the hardware mapper consumes this to cost out the
systolic-array schedule under pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.attention import MultiHeadSelfAttention, TokenFilter
from repro.nn.layers import GELU, LayerNorm, Linear, Module, Sequential
from repro.nn.tensor import Tensor
from repro.utils.rng import default_rng


@dataclass
class TokenTrace:
    """Per-block token counts observed during one forward pass."""

    tokens_per_block: list[int] = field(default_factory=list)
    initial_tokens: int = 0

    @property
    def final_tokens(self) -> int:
        return self.tokens_per_block[-1] if self.tokens_per_block else self.initial_tokens

    @property
    def pruning_ratio(self) -> float:
        """Fraction of token-compute removed relative to a no-pruning pass."""
        if not self.tokens_per_block or self.initial_tokens == 0:
            return 0.0
        full = self.initial_tokens * len(self.tokens_per_block)
        actual = sum(self.tokens_per_block)
        return 1.0 - actual / full


@dataclass
class BatchTokenTrace:
    """Per-sample, per-block live-token counts of one batched forward.

    The padded/masked batch keeps one column layout for every sample, but
    each sample prunes independently — so the *compute-relevant* token count
    (what the accelerator or a gather-compacted kernel would execute) differs
    per sample.  ``tokens_per_block[i, b]`` is sample ``i``'s live tokens in
    block ``b``.
    """

    tokens_per_block: np.ndarray  # (N, depth) int
    initial_tokens: int = 0

    @property
    def batch_size(self) -> int:
        return int(self.tokens_per_block.shape[0])

    def sample(self, i: int) -> TokenTrace:
        """The classic single-sample trace of batch element ``i``."""
        return TokenTrace(
            tokens_per_block=[int(t) for t in self.tokens_per_block[i]],
            initial_tokens=self.initial_tokens,
        )

    def per_sample(self) -> list[TokenTrace]:
        return [self.sample(i) for i in range(self.batch_size)]

    @property
    def pruning_ratios(self) -> np.ndarray:
        """(N,) per-sample compute-pruning ratios."""
        if self.tokens_per_block.size == 0 or self.initial_tokens == 0:
            return np.zeros(self.batch_size)
        full = self.initial_tokens * self.tokens_per_block.shape[1]
        return 1.0 - self.tokens_per_block.sum(axis=1) / full

    @property
    def pruning_ratio(self) -> float:
        """Batch-mean pruning ratio (drop-in for ``TokenTrace.pruning_ratio``)."""
        return float(np.mean(self.pruning_ratios)) if self.batch_size else 0.0

    def mean_tokens_per_block(self) -> list[int]:
        """Rounded batch-mean per-block token counts (workload costing)."""
        return [int(round(t)) for t in self.tokens_per_block.mean(axis=0)]


class PatchEmbed(Module):
    """Split a monochrome image into patches and project them to ``dim``."""

    def __init__(self, image_size: int, patch_size: int, dim: int, seed=None):
        super().__init__()
        if image_size % patch_size != 0:
            raise ValueError(
                f"image_size {image_size} must be divisible by patch_size {patch_size}"
            )
        self.image_size = image_size
        self.patch_size = patch_size
        self.grid = image_size // patch_size
        self.num_patches = self.grid * self.grid
        self.proj = Linear(patch_size * patch_size, dim, seed=seed)

    def forward(self, x: Tensor) -> Tensor:
        """x: (N, H, W) monochrome image -> (N, num_patches, dim)."""
        n, h, w = x.shape
        if h != self.image_size or w != self.image_size:
            raise ValueError(
                f"expected {self.image_size}x{self.image_size} input, got {h}x{w}"
            )
        p, g = self.patch_size, self.grid
        patches = x.reshape(n, g, p, g, p).transpose(0, 1, 3, 2, 4).reshape(n, g * g, p * p)
        return self.proj(patches)


class TransformerBlock(Module):
    """Pre-norm transformer encoder block (LN→MHA→res, LN→MLP→res)."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 4.0, seed=None):
        super().__init__()
        base = 0 if seed is None else seed
        hidden = int(dim * mlp_ratio)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, seed=base)
        self.norm2 = LayerNorm(dim)
        self.mlp = Sequential(
            Linear(dim, hidden, seed=base + 2),
            GELU(),
            Linear(hidden, dim, seed=base + 3),
        )

    def forward(self, x: Tensor, key_mask: "np.ndarray | None" = None) -> Tensor:
        x = x + self.attn(self.norm1(x), key_mask=key_mask)
        x = x + self.mlp(self.norm2(x))
        return x


class ViTEncoder(Module):
    """Token-prunable ViT encoder with a class token and learned positions.

    Token filters run after every ``prune_every`` blocks (the paper's token
    selector fires every two transformer layers).  Pruning is an
    inference-time mechanism: during training (or when no filter is given)
    all tokens flow through every block.
    """

    def __init__(
        self,
        image_size: int,
        patch_size: int,
        dim: int,
        depth: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        prune_every: int = 2,
        seed=None,
    ):
        super().__init__()
        rng = default_rng(seed)
        base = 0 if seed is None else seed
        self.dim = dim
        self.depth = depth
        self.prune_every = prune_every
        self.patch_embed = PatchEmbed(image_size, patch_size, dim, seed=base)
        self.cls_token = Tensor(
            init.truncated_normal((1, 1, dim), 0.02, rng), requires_grad=True, name="cls"
        )
        self.pos_embed = Tensor(
            init.truncated_normal((1, self.patch_embed.num_patches + 1, dim), 0.02, rng),
            requires_grad=True,
            name="pos",
        )
        self.blocks = [
            TransformerBlock(dim, num_heads, mlp_ratio, seed=base + 10 * (i + 1))
            for i in range(depth)
        ]
        self.norm = LayerNorm(dim)

    def forward(
        self, x: Tensor, token_filter: "TokenFilter | None" = None
    ) -> "tuple[Tensor, TokenTrace | BatchTokenTrace]":
        """Encode an image batch; returns (cls embedding, token trace).

        Token pruning is per-sample even in a batch: each sample keeps its
        own token subset (selected from its own received-attention stats)
        while the batch stays rectangular via a live-token mask.  Columns no
        sample keeps are compacted away, so a batch of one degenerates to
        exact single-sample pruning with no masking overhead — bit-identical
        to running the sample alone.  Returns a :class:`TokenTrace` for a
        single sample and a :class:`BatchTokenTrace` otherwise.
        """
        n = x.shape[0]
        tokens = self.patch_embed(x)
        # Broadcast the class token across the batch via a differentiable
        # multiply so its gradient accumulates over samples.
        cls = self.cls_token * Tensor(np.ones((n, 1, 1)))
        from repro.nn.tensor import concatenate

        tokens = concatenate([cls, tokens], axis=1)
        tokens = tokens + self.pos_embed

        initial_tokens = tokens.shape[1]
        active = np.ones((n, initial_tokens), dtype=bool)
        counts: list[np.ndarray] = []
        for i, block in enumerate(self.blocks):
            counts.append(active.sum(axis=1))
            tokens = block(tokens, key_mask=None if active.all() else active)
            at_filter = (i + 1) % self.prune_every == 0 and (i + 1) < self.depth
            if token_filter is not None and at_filter:
                active = token_filter.keep_mask(block.attn.last_stats, active)
                live_cols = active.any(axis=0)
                if not live_cols.all():
                    tokens = tokens[:, np.flatnonzero(live_cols), :]
                    active = active[:, live_cols]
        tokens = self.norm(tokens)
        emb = tokens[:, 0, :]
        per_block = np.stack(counts, axis=1)  # (N, depth)
        if n == 1:
            return emb, TokenTrace(
                tokens_per_block=[int(t) for t in per_block[0]],
                initial_tokens=initial_tokens,
            )
        return emb, BatchTokenTrace(
            tokens_per_block=per_block, initial_tokens=initial_tokens
        )
