"""Weight initialization schemes."""

from __future__ import annotations

import math

import numpy as np


def kaiming_uniform(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-uniform init appropriate for ReLU-family activations."""
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: tuple, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init appropriate for tanh/linear/attention layers."""
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def truncated_normal(shape: tuple, std: float, rng: np.random.Generator) -> np.ndarray:
    """Normal init truncated to two standard deviations (ViT convention)."""
    samples = rng.normal(0.0, std, size=shape)
    return np.clip(samples, -2.0 * std, 2.0 * std)
