"""Multi-head self-attention with attention-score export.

POLOViT's token filter (paper §4.3 / §5.2) ranks tokens by the attention
they *receive*: the accelerator's token selector sums each column of the
attention map across heads, and tokens whose importance falls below a
threshold are pruned.  To support that, this attention module exposes the
per-token received-attention statistics of its last forward pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


@dataclass
class AttentionStats:
    """Received-attention statistics for one attention layer.

    Attributes:
        column_sum: (N, T) sum over queries and heads of attention into each
            token — the quantity the hardware token selector accumulates.
        column_max: (N, T) maximum attention weight received by each token
            over all queries and heads — the pruning criterion of §4.3.
    """

    column_sum: np.ndarray
    column_max: np.ndarray


class MultiHeadSelfAttention(Module):
    """Standard pre-norm ViT attention with QKV projections."""

    def __init__(self, dim: int, num_heads: int, seed=None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = 1.0 / math.sqrt(self.head_dim)
        base = 0 if seed is None else seed
        self.qkv = Linear(dim, 3 * dim, seed=base)
        self.proj = Linear(dim, dim, seed=base + 1)
        self.last_stats: "AttentionStats | None" = None

    def forward(self, x: Tensor, key_mask: "np.ndarray | None" = None) -> Tensor:
        """Attend over ``x``; ``key_mask`` (N, T) marks each sample's live tokens.

        Masked (pruned) tokens receive exactly zero attention weight and are
        excluded from the received-attention statistics, so a padded batch
        where sample ``i`` keeps ``k_i`` tokens behaves like ``N`` independent
        forwards over the compacted ``k_i``-token sequences.  An all-true (or
        absent) mask takes the unmasked path, so unpruned batches pay nothing.
        """
        n, t, d = x.shape
        if key_mask is not None:
            key_mask = np.asarray(key_mask, dtype=bool)
            if key_mask.shape != (n, t):
                raise ValueError(
                    f"key_mask shape {key_mask.shape} does not match tokens ({n}, {t})"
                )
            if not key_mask.any(axis=1).all():
                raise ValueError("key_mask must keep at least one token per sample")
            if key_mask.all():
                key_mask = None
        qkv = self.qkv(x)  # (N, T, 3D)
        qkv = qkv.reshape(n, t, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, N, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = (q @ k.swapaxes(-1, -2)) * self.scale  # (N, H, T, T)
        if key_mask is not None:
            # Additive -inf on dead key columns: their post-softmax weight is
            # exactly 0.0, so they contribute nothing to any live token.
            bias = np.where(key_mask[:, None, None, :], 0.0, -np.inf)
            scores = scores + Tensor(bias)
        attn = F.softmax(scores, axis=-1)

        # Column statistics: attention *received* by each key token.  Under a
        # mask, only live queries vote (dead rows hold stale token values).
        attn_np = attn.data
        if key_mask is None:
            self.last_stats = AttentionStats(
                column_sum=attn_np.sum(axis=(1, 2)),
                column_max=attn_np.max(axis=(1, 2)),
            )
        else:
            live_rows = np.where(key_mask[:, None, :, None], attn_np, 0.0)
            self.last_stats = AttentionStats(
                column_sum=live_rows.sum(axis=(1, 2)),
                column_max=live_rows.max(axis=(1, 2)),
            )

        out = attn @ v  # (N, H, T, hd)
        out = out.transpose(0, 2, 1, 3).reshape(n, t, d)
        return self.proj(out)


class TokenFilter:
    """Selects which tokens survive a pruning stage.

    Two policies are supported, matching how the paper uses the selector:

    * ``threshold``: drop tokens whose received-attention importance is below
      a fixed threshold (the hardware implementation, §5.2).
    * ``ratio``: drop a fixed fraction of the lowest-importance tokens
      (used to sweep exact overall pruning ratios in Tables 1 and 5).

    The class token (index 0) is always kept because the gaze regression
    head reads it.
    """

    def __init__(
        self,
        threshold: "float | None" = None,
        ratio: "float | None" = None,
        criterion: str = "max",
    ):
        if (threshold is None) == (ratio is None):
            raise ValueError("specify exactly one of threshold or ratio")
        if ratio is not None and not 0.0 <= ratio < 1.0:
            raise ValueError(f"ratio must be in [0, 1), got {ratio}")
        if criterion not in ("max", "sum"):
            raise ValueError(f"criterion must be 'max' or 'sum', got {criterion!r}")
        self.threshold = threshold
        self.ratio = ratio
        self.criterion = criterion

    def importance(self, stats: AttentionStats) -> np.ndarray:
        return stats.column_max if self.criterion == "max" else stats.column_sum

    def _keep_row(self, scores: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Keep decision for one sample: boolean mask over its token slots.

        ``active`` marks the slots that are still live for this sample (a
        padded batch carries already-pruned slots); dead slots never revive.
        """
        t = scores.shape[0]
        keep = np.zeros(t, dtype=bool)
        image = np.flatnonzero(active[1:]) + 1  # live non-CLS tokens
        if self.threshold is not None:
            keep = active & (scores >= self.threshold)
        else:
            n_drop = int(round(self.ratio * image.size))
            order = image[np.argsort(scores[image], kind="stable")]
            keep[image] = True
            keep[order[:n_drop]] = False
        keep[0] = True  # the gaze head reads the CLS token
        if keep.sum() < 2 and image.size:
            # Degenerate pruning (everything but CLS dropped) would starve the
            # head of image evidence; keep the single best image token.
            keep[image[int(np.argmax(scores[image]))]] = True
        return keep

    def keep_mask(
        self, stats: AttentionStats, active: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Per-sample keep masks (N, T) for a batch.

        Each sample is pruned independently against its own received-attention
        statistics, restricted to its live tokens; the caller keeps the batch
        rectangular by masking (and optionally compacting) dead columns.
        """
        scores = self.importance(stats)
        if active is None:
            active = np.ones(scores.shape, dtype=bool)
        if active.shape != scores.shape:
            raise ValueError(
                f"active mask shape {active.shape} does not match stats {scores.shape}"
            )
        return np.stack(
            [self._keep_row(scores[i], active[i]) for i in range(scores.shape[0])]
        )

    def keep_indices(self, stats: AttentionStats) -> np.ndarray:
        """Sorted token indices to keep, for a single sample.

        Batched callers use :meth:`keep_mask`; this remains the per-sample
        view (also how the accelerator's token selector executes).
        """
        scores = self.importance(stats)
        if scores.shape[0] != 1:
            raise ValueError("keep_indices is per-sample; use keep_mask for batches")
        return np.flatnonzero(
            self._keep_row(scores[0], np.ones(scores.shape[1], dtype=bool))
        )
