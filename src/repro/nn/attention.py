"""Multi-head self-attention with attention-score export.

POLOViT's token filter (paper §4.3 / §5.2) ranks tokens by the attention
they *receive*: the accelerator's token selector sums each column of the
attention map across heads, and tokens whose importance falls below a
threshold are pruned.  To support that, this attention module exposes the
per-token received-attention statistics of its last forward pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


@dataclass
class AttentionStats:
    """Received-attention statistics for one attention layer.

    Attributes:
        column_sum: (N, T) sum over queries and heads of attention into each
            token — the quantity the hardware token selector accumulates.
        column_max: (N, T) maximum attention weight received by each token
            over all queries and heads — the pruning criterion of §4.3.
    """

    column_sum: np.ndarray
    column_max: np.ndarray


class MultiHeadSelfAttention(Module):
    """Standard pre-norm ViT attention with QKV projections."""

    def __init__(self, dim: int, num_heads: int, seed=None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = 1.0 / math.sqrt(self.head_dim)
        base = 0 if seed is None else seed
        self.qkv = Linear(dim, 3 * dim, seed=base)
        self.proj = Linear(dim, dim, seed=base + 1)
        self.last_stats: "AttentionStats | None" = None

    def forward(self, x: Tensor) -> Tensor:
        n, t, d = x.shape
        qkv = self.qkv(x)  # (N, T, 3D)
        qkv = qkv.reshape(n, t, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, N, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = (q @ k.swapaxes(-1, -2)) * self.scale  # (N, H, T, T)
        attn = F.softmax(scores, axis=-1)

        # Column statistics: attention *received* by each key token.
        attn_np = attn.data
        self.last_stats = AttentionStats(
            column_sum=attn_np.sum(axis=(1, 2)),
            column_max=attn_np.max(axis=(1, 2)),
        )

        out = attn @ v  # (N, H, T, hd)
        out = out.transpose(0, 2, 1, 3).reshape(n, t, d)
        return self.proj(out)


class TokenFilter:
    """Selects which tokens survive a pruning stage.

    Two policies are supported, matching how the paper uses the selector:

    * ``threshold``: drop tokens whose received-attention importance is below
      a fixed threshold (the hardware implementation, §5.2).
    * ``ratio``: drop a fixed fraction of the lowest-importance tokens
      (used to sweep exact overall pruning ratios in Tables 1 and 5).

    The class token (index 0) is always kept because the gaze regression
    head reads it.
    """

    def __init__(
        self,
        threshold: "float | None" = None,
        ratio: "float | None" = None,
        criterion: str = "max",
    ):
        if (threshold is None) == (ratio is None):
            raise ValueError("specify exactly one of threshold or ratio")
        if ratio is not None and not 0.0 <= ratio < 1.0:
            raise ValueError(f"ratio must be in [0, 1), got {ratio}")
        if criterion not in ("max", "sum"):
            raise ValueError(f"criterion must be 'max' or 'sum', got {criterion!r}")
        self.threshold = threshold
        self.ratio = ratio
        self.criterion = criterion

    def importance(self, stats: AttentionStats) -> np.ndarray:
        return stats.column_max if self.criterion == "max" else stats.column_sum

    def keep_indices(self, stats: AttentionStats) -> np.ndarray:
        """Return sorted token indices to keep, for a batch of size 1.

        Pruning changes the token count, so batched pruning would produce a
        ragged batch; the runtime prunes per-sample (batch size 1), which is
        also how the accelerator executes.
        """
        scores = self.importance(stats)
        if scores.shape[0] != 1:
            raise ValueError("token pruning requires batch size 1")
        scores = scores[0]
        t = scores.shape[0]
        if self.threshold is not None:
            keep = np.flatnonzero(scores >= self.threshold)
        else:
            n_drop = int(round(self.ratio * (t - 1)))
            order = np.argsort(scores[1:], kind="stable") + 1  # never rank the CLS token
            dropped = set(order[:n_drop].tolist())
            keep = np.array([i for i in range(t) if i not in dropped])
        if 0 not in keep:
            keep = np.concatenate([[0], keep])
        keep.sort()
        if keep.size < 2:
            # Degenerate pruning (everything but CLS dropped) would starve the
            # head of image evidence; keep the single best image token.
            best = int(np.argmax(scores[1:])) + 1
            keep = np.array(sorted({0, best}))
        return keep
