"""Recurrent building block used by the saccade detector (paper Eq. 2).

The cell is a leaky recurrence with learnable mixing scalars:

    h_t = beta * h_{t-1} + alpha * tanh(W x_t + U h_{t-1} + b)

``alpha`` controls the impact of the current observation and ``beta`` the
retention of history; both are trained jointly with ``W`` and ``U``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


class LeakyRecurrentCell(Module):
    """One step of the Eq. 2 recurrence."""

    def __init__(self, input_dim: int, hidden_dim: int, seed=None):
        super().__init__()
        base = 0 if seed is None else seed
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w = Linear(input_dim, hidden_dim, seed=base)
        self.u = Linear(hidden_dim, hidden_dim, bias=False, seed=base + 1)
        self.alpha = Tensor(np.array(1.0), requires_grad=True, name="alpha")
        self.beta = Tensor(np.array(0.5), requires_grad=True, name="beta")

    def forward(self, x: Tensor, h: "Tensor | None" = None) -> Tensor:
        """Advance the hidden state by one frame.

        Args:
            x: (N, input_dim) features for the current frame.
            h: (N, hidden_dim) previous hidden state, or None for the zero
                state at sequence start.
        """
        if h is None:
            h = Tensor(np.zeros((x.shape[0], self.hidden_dim)))
        candidate = (self.w(x) + self.u(h)).tanh()
        return self.beta * h + self.alpha * candidate

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))
