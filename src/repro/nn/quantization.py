"""INT8 post-training quantization (paper §4.3: "all activations and
weights are 8-bit quantized to further cut bandwidth and storage").

The simulation uses *fake quantization*: values are mapped to the int8
grid and back to float, so downstream numpy code observes exactly the
precision loss of an int8 datapath while staying in float arithmetic.
Weights use symmetric per-tensor scales; activations are quantized with
scales calibrated on sample inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor


@dataclass(frozen=True)
class QuantSpec:
    """Symmetric linear quantization grid."""

    bits: int = 8

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    def scale_for(self, array: np.ndarray) -> float:
        """Symmetric per-tensor scale covering the array's max magnitude."""
        peak = float(np.abs(array).max())
        if peak == 0.0:
            return 1.0
        return peak / self.qmax

    def quantize(self, array: np.ndarray, scale: "float | None" = None) -> np.ndarray:
        """Map to the int8 grid and back (fake quantization)."""
        scale = self.scale_for(array) if scale is None else scale
        q = np.clip(np.round(array / scale), -self.qmax - 1, self.qmax)
        return q * scale

    def quantize_to_int(self, array: np.ndarray, scale: "float | None" = None):
        """Return (int codes, scale) — used by storage-size accounting."""
        scale = self.scale_for(array) if scale is None else scale
        q = np.clip(np.round(array / scale), -self.qmax - 1, self.qmax)
        return q.astype(np.int8 if self.bits <= 8 else np.int32), scale

    def quantize_per_channel(self, array: np.ndarray, axis: int = 0) -> np.ndarray:
        """Fake quantization with one symmetric scale per slice of ``axis``
        (per-output-channel weight quantization — standard INT8 practice,
        and what keeps small models accurate under quantization)."""
        if array.ndim < 2:
            return self.quantize(array)
        moved = np.moveaxis(array, axis, 0)
        flat = moved.reshape(moved.shape[0], -1)
        peaks = np.abs(flat).max(axis=1)
        scales = np.where(peaks > 0, peaks / self.qmax, 1.0)
        q = np.clip(np.round(flat / scales[:, None]), -self.qmax - 1, self.qmax)
        out = (q * scales[:, None]).reshape(moved.shape)
        return np.moveaxis(out, 0, axis)


def quantize_weights(
    model: Module, spec: "QuantSpec | None" = None, per_channel: bool = True
) -> dict[str, float]:
    """Fake-quantize every parameter of ``model`` in place.

    Matrix-shaped parameters use per-output-channel scales by default;
    vectors fall back to per-tensor.  Returns the per-parameter (tensor)
    scales so callers can audit the grids.
    """
    spec = spec or QuantSpec()
    scales: dict[str, float] = {}
    for name, param in model.named_parameters():
        scale = spec.scale_for(param.data)
        if per_channel and param.data.ndim >= 2:
            param.data = spec.quantize_per_channel(param.data, axis=0)
        else:
            param.data = spec.quantize(param.data, scale)
        scales[name] = scale
    return scales


def quantization_error(array: np.ndarray, spec: "QuantSpec | None" = None) -> float:
    """RMS error introduced by quantizing ``array`` (diagnostic helper)."""
    spec = spec or QuantSpec()
    quantized = spec.quantize(array)
    return float(np.sqrt(np.mean((array - quantized) ** 2)))


class ActivationQuantizer:
    """Calibrated activation fake-quantizer.

    Call :meth:`observe` on representative activations to widen the scale,
    then :meth:`__call__` to quantize at inference.  POLOViT applies one of
    these at block boundaries when running in INT8 mode.
    """

    def __init__(self, spec: "QuantSpec | None" = None):
        self.spec = spec or QuantSpec()
        self._peak = 0.0

    @property
    def calibrated(self) -> bool:
        return self._peak > 0.0

    @property
    def scale(self) -> float:
        if not self.calibrated:
            raise RuntimeError("activation quantizer used before calibration")
        return self._peak / self.spec.qmax

    def observe(self, array: np.ndarray) -> None:
        self._peak = max(self._peak, float(np.abs(array).max()))

    def __call__(self, x: "Tensor | np.ndarray"):
        data = x.data if isinstance(x, Tensor) else x
        if not self.calibrated:
            self.observe(data)
        quantized = self.spec.quantize(data, self.scale)
        if isinstance(x, Tensor):
            return Tensor(quantized)
        return quantized
