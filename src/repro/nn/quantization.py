"""INT8 post-training quantization (paper §4.3: "all activations and
weights are 8-bit quantized to further cut bandwidth and storage").

The simulation uses *fake quantization*: values are mapped to the int8
grid and back to float, so downstream numpy code observes exactly the
precision loss of an int8 datapath while staying in float arithmetic.
Weights use symmetric per-tensor scales; activations are quantized with
scales calibrated on sample inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor


def _check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Quantizing NaN/Inf must raise, never silently saturate.

    ``np.clip(np.round(nan))`` lands NaN *codes* in the int grid and Inf
    pins to the rail — both are silent corruption of the stored tensor,
    and exact bit-level fault injection (``repro.reliability``) relies on
    codes round-tripping losslessly.  A non-finite input is a bug in the
    caller; name it."""
    if not np.isfinite(array).all():
        bad = np.argwhere(~np.isfinite(np.atleast_1d(array)))[0]
        raise ValueError(
            f"{name} contains non-finite values (first at index "
            f"{tuple(int(i) for i in bad)}); quantization would silently "
            "saturate or poison the grid"
        )
    return array


def _check_scale(name: str, scale: float) -> float:
    if not (np.isfinite(scale) and scale > 0.0):
        raise ValueError(f"{name} must be a positive finite scale, got {scale!r}")
    return float(scale)


@dataclass(frozen=True)
class QuantSpec:
    """Symmetric linear quantization grid."""

    bits: int = 8

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    def scale_for(self, array: np.ndarray) -> float:
        """Symmetric per-tensor scale covering the array's max magnitude."""
        _check_finite("array", np.asarray(array))
        peak = float(np.abs(array).max())
        if peak == 0.0:
            return 1.0
        # A subnormal peak can underflow peak/qmax to exactly 0.0; clamp
        # to the smallest normal so division stays finite and the codes
        # (all zero at that magnitude) still round-trip exactly.
        scale = max(peak / self.qmax, float(np.finfo(np.float64).tiny))
        # Near float64 max, peak/qmax rounds up just enough that
        # qmax*scale overflows to inf — nudge down so the rail code
        # dequantizes to a finite value and round-trips.
        while not np.isfinite(scale * self.qmax):
            scale = float(np.nextafter(scale, 0.0))
        return scale

    def quantize(self, array: np.ndarray, scale: "float | None" = None) -> np.ndarray:
        """Map to the int8 grid and back (fake quantization)."""
        array = _check_finite("array", np.asarray(array))
        scale = self.scale_for(array) if scale is None else _check_scale("scale", scale)
        q = np.clip(np.round(array / scale), -self.qmax - 1, self.qmax)
        return q * scale

    def quantize_to_int(self, array: np.ndarray, scale: "float | None" = None):
        """Return (int codes, scale) — the exact SRAM image of the tensor.

        Codes round-trip losslessly: requantizing ``dequantize(codes,
        scale)`` with the same scale reproduces the identical codes, which
        is what lets :mod:`repro.reliability.softerror` flip real stored
        bits and reason about the exact value corruption."""
        array = _check_finite("array", np.asarray(array))
        scale = self.scale_for(array) if scale is None else _check_scale("scale", scale)
        q = np.clip(np.round(array / scale), -self.qmax - 1, self.qmax)
        return q.astype(np.int8 if self.bits <= 8 else np.int32), scale

    def dequantize(self, codes: np.ndarray, scale: float) -> np.ndarray:
        """Exact float value of stored int codes (inverse of
        :meth:`quantize_to_int` up to the grid)."""
        _check_scale("scale", scale)
        return codes.astype(np.float64) * scale

    def quantize_per_channel(self, array: np.ndarray, axis: int = 0) -> np.ndarray:
        """Fake quantization with one symmetric scale per slice of ``axis``
        (per-output-channel weight quantization — standard INT8 practice,
        and what keeps small models accurate under quantization)."""
        array = _check_finite("array", np.asarray(array))
        if array.ndim < 2:
            return self.quantize(array)
        moved = np.moveaxis(array, axis, 0)
        flat = moved.reshape(moved.shape[0], -1)
        peaks = np.abs(flat).max(axis=1)
        scales = np.maximum(
            np.where(peaks > 0, peaks / self.qmax, 1.0),
            float(np.finfo(np.float64).tiny),
        )
        q = np.clip(np.round(flat / scales[:, None]), -self.qmax - 1, self.qmax)
        out = (q * scales[:, None]).reshape(moved.shape)
        return np.moveaxis(out, 0, axis)


def quantize_weights(
    model: Module, spec: "QuantSpec | None" = None, per_channel: bool = True
) -> dict[str, float]:
    """Fake-quantize every parameter of ``model`` in place.

    Matrix-shaped parameters use per-output-channel scales by default;
    vectors fall back to per-tensor.  Returns the per-parameter (tensor)
    scales so callers can audit the grids.
    """
    spec = spec or QuantSpec()
    scales: dict[str, float] = {}
    for name, param in model.named_parameters():
        scale = spec.scale_for(param.data)
        if per_channel and param.data.ndim >= 2:
            param.data = spec.quantize_per_channel(param.data, axis=0)
        else:
            param.data = spec.quantize(param.data, scale)
        scales[name] = scale
    return scales


def quantization_error(array: np.ndarray, spec: "QuantSpec | None" = None) -> float:
    """RMS error introduced by quantizing ``array`` (diagnostic helper)."""
    spec = spec or QuantSpec()
    quantized = spec.quantize(array)
    return float(np.sqrt(np.mean((array - quantized) ** 2)))


class ActivationQuantizer:
    """Calibrated activation fake-quantizer.

    Call :meth:`observe` on representative activations to widen the scale,
    then :meth:`__call__` to quantize at inference.  POLOViT applies one of
    these at block boundaries when running in INT8 mode.
    """

    def __init__(self, spec: "QuantSpec | None" = None):
        self.spec = spec or QuantSpec()
        self._peak = 0.0

    @property
    def calibrated(self) -> bool:
        return self._peak > 0.0

    @property
    def scale(self) -> float:
        if not self.calibrated:
            raise RuntimeError("activation quantizer used before calibration")
        return max(self._peak / self.spec.qmax, float(np.finfo(np.float64).tiny))

    def observe(self, array: np.ndarray) -> None:
        _check_finite("array", np.asarray(array))
        self._peak = max(self._peak, float(np.abs(array).max()))

    def __call__(self, x: "Tensor | np.ndarray"):
        data = x.data if isinstance(x, Tensor) else x
        if not self.calibrated:
            self.observe(data)
        quantized = self.spec.quantize(data, self.scale)
        if isinstance(x, Tensor):
            return Tensor(quantized)
        return quantized
