"""Lossy-transport bench: what the protocol pays and what it saves.

Three identical lossy fleets (10% drop, 10% duplication, jittered
delays) with partition windows of increasing length cutting shard 1 off
the router.  The acceptance claims: retransmission absorbs a short
partition without tripping the failure detector, a long one fails over
through suspicion and heals with session bounce-back after the window
lifts — and in every cell the frame-conservation ledger closes with
zero frames lost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_bench_json
from repro.bench.suites import (
    flatten_net_payload,
    net_payload,
    run_net_transport,
)
from repro.system import table_to_text


@pytest.mark.benchmark(group="fleet")
def test_partitions_cost_retransmits_not_frames(benchmark):
    # Same callable as ``python -m repro bench run --suite net`` so the
    # pytest bench and the history ledger can never drift apart.
    rows, wall_s = benchmark.pedantic(run_net_transport, rounds=1, iterations=1)

    payload = net_payload(rows, wall_s)
    table = [
        [
            f"{w['partition_s'] * 1000:.0f}ms",
            f"{w['retransmit_overhead']:.1%}",
            int(w["frames_lost"]),
            w["deduped"],
            w["suspected"],
            w["bounced"],
            f"{w['heal_s'] * 1000:.1f}ms" if w["heal_s"] else "-",
            f"{w['goodput_fps']:.0f}",
        ]
        for w in payload["windows"]
    ]
    emit(table_to_text(
        ["Partition", "Retx", "Lost", "Deduped", "Susp", "Bounced",
         "Heal", "Goodput"],
        table,
        min_width=8,
    ))
    emit_bench_json("net", payload, metrics=flatten_net_payload(payload))

    short, medium, long = (w for _, w in zip(rows, payload["windows"]))
    # A short partition rides on retransmits alone — no suspicion.
    assert short["suspected"] == 0
    # Long ones trip the detector and heal with bounce-back.
    assert medium["suspected"] == 1 and long["suspected"] == 1
    assert medium["bounced"] > 0 and long["bounced"] > 0
    assert long["heal_s"] > 0
    for window in payload["windows"]:
        # Exactly-once delivery: duplicates were deduped, nothing lost.
        assert window["deduped"] > 0
        assert window["frames_lost"] == 0
        assert window["goodput_fps"] > 0
    # Conservation closes in every cell.
    for _, report in rows:
        total = sum(s.total_frames for s in report.sessions)
        assert total == sum(
            s.completed + s.shed + s.pending + s.lost_input
            + s.lost_shard + s.lost_net
            for s in report.sessions
        )
