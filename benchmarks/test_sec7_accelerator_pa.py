"""§7 synthesis summary — POLO accelerator area, area split, and power.

Paper: 0.75 mm^2 at 22 nm, split 72% buffers / 24% computational engine /
4% IPU, with 0.15 W average power at 1 GHz.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.accelerator_pa import format_accelerator_pa, run_accelerator_pa


@pytest.mark.benchmark(group="sec7")
def test_sec7_accelerator_power_area(benchmark):
    result = benchmark(run_accelerator_pa)
    emit(format_accelerator_pa(result))

    assert result.total_mm2 == pytest.approx(0.75, rel=0.1)
    assert result.buffers_fraction == pytest.approx(0.72, abs=0.05)
    assert result.engine_fraction == pytest.approx(0.24, abs=0.05)
    assert result.ipu_fraction == pytest.approx(0.04, abs=0.02)
    assert result.average_power_w < 0.15
    # POLO_N gaze-processing latency in the paper's ~10 ms band.
    assert result.predict_latency_ms == pytest.approx(10.5, rel=0.4)
