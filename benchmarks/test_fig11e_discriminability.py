"""Fig. 11e — discriminability / JND vs foveal eccentricity.

Paper: curves for delta-theta of 2/3/5/10 degrees peaking near 30%
discriminability; at delta = 10 deg the 5% threshold sits near
theta_f = 15 deg.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.discriminability import format_fig11e, run_fig11e


@pytest.mark.benchmark(group="fig11e")
def test_fig11e_discriminability(benchmark):
    result = benchmark(run_fig11e)
    emit(format_fig11e(result))

    assert result.thresholds_5pct[10.0] == pytest.approx(15.0, abs=2.5)
    # Larger tracking error always needs a larger foveal region.
    thresholds = [result.thresholds_5pct[d] for d in (2.0, 3.0, 5.0, 10.0)]
    assert all(a <= b for a, b in zip(thresholds, thresholds[1:]))
    # Peak discriminability matches the figure's ~30% ceiling.
    for _, probs, _ in result.curves.values():
        assert probs.max() <= 0.30 + 1e-9
