"""Fig. 13c — sequential vs parallel (R1/R2) computational pattern.

Paper shape: overlapping the gaze-independent R1 pass with gaze tracking
reduces end-to-end latency for every method (average ~9.4%; POLO_N ~10%
with its R1 fully hiding the gaze latency).  Our schedule model lets R1
start at frame start, so the measured reductions run somewhat larger;
the direction and ordering are the claims under test.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablations import format_fig13c, run_fig13c


@pytest.mark.benchmark(group="fig13c")
def test_fig13c_computational_pattern(benchmark, measured_errors_p95):
    result = benchmark.pedantic(
        run_fig13c, args=(measured_errors_p95,), rounds=1, iterations=1
    )
    emit(format_fig13c(result))

    for name in result.sequential_ms:
        assert result.parallel_ms[name] <= result.sequential_ms[name] + 1e-9
        assert result.reduction(name) > 0.02, f"{name}: no parallel benefit"

    avg = result.average_reduction()
    assert 0.05 < avg < 0.40, f"average reduction {avg:.1%} vs paper 9.4%"

    # POLO's cheap gaze stage hides completely behind R1, so its relative
    # benefit is at least as large as the heavyweight methods'.
    assert result.reduction("POLO_N") >= result.reduction("DeepVOG") - 1e-9
