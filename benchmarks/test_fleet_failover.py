"""Sharded-fleet failover bench: goodput and bounded loss under a kill.

Four shards serve 96 predict-heavy sessions; shard 2 dies halfway
through the window.  The acceptance claims: the fleet keeps serving
(goodput stays positive after losing a quarter of its workers), every
generated frame is accounted for, and the kill loses only the frames
physically on the dead shard — queued or in flight — at kill time.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_bench_json
from repro.bench.suites import (
    fleet_payload,
    flatten_fleet_payload,
    run_fleet_failover,
)
from repro.system import table_to_text


@pytest.mark.benchmark(group="fleet")
def test_failover_keeps_serving_with_bounded_loss(benchmark):
    # Same callable as ``python -m repro bench run --suite fleet`` so the
    # pytest bench and the history ledger can never drift apart.
    report, wall_s = benchmark.pedantic(
        run_fleet_failover, rounds=1, iterations=1
    )

    section = report.shards
    table = [
        [
            row["shard_id"],
            row["status"],
            row["sessions"],
            row["completed"],
            row["lost_frames"],
            row["rehomed_in"],
            f"{row['utilization']:.0%}",
        ]
        for row in section.shard_rows
    ]
    emit(table_to_text(
        ["Shard", "Status", "Sessions", "Done", "Lost", "Rehomed", "Util"],
        table,
        min_width=8,
    ))
    payload = fleet_payload(report, wall_s)
    emit_bench_json("fleet", payload, metrics=flatten_fleet_payload(payload))

    # Exactly one shard died; the survivors took its sessions.
    assert section.shards_killed == 1
    assert section.shards_serving == 3
    assert section.rehomed_sessions > 0
    # Conservation: every generated frame ends in exactly one bucket.
    total = sum(s.total_frames for s in report.sessions)
    assert total == sum(
        s.completed + s.shed + s.pending + s.lost_input + s.lost_shard
        for s in report.sessions
    )
    # Bounded loss: the failover ledger and the per-session ledgers agree,
    # and the loss is a sliver of the workload.
    lost = sum(s.lost_shard for s in report.sessions)
    assert lost == section.failover_lost_frames
    assert lost / total < 0.05
    # The fleet keeps producing fresh predictions after the kill.
    assert report.predict_goodput_fps > 0
