"""Fig. 15 — 2IFC user study: POLOViT-driven foveation vs ResNet-34.

Paper: POLOViT preferred 90% +/- 7% overall (93/73/91/100% per video),
with the high-motion video (video 2) showing the weakest preference.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.user_study_exp import format_fig15, run_fig15


@pytest.mark.benchmark(group="fig15")
def test_fig15_user_study(benchmark, bench_context):
    experiment = benchmark.pedantic(
        run_fig15, kwargs={"context": bench_context, "seed": 42}, rounds=1, iterations=1
    )
    emit(format_fig15(experiment))
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks
    result = experiment.result

    # POLOViT's lower-error traces are preferred.  The margin is smaller
    # than the paper's 90% because the compact models' error traces
    # differ by ~1.1x rather than the published ~4.5x (see
    # EXPERIMENTS.md); the claim under test is the consistent direction.
    assert result.mean_selection > 0.52, (
        f"POLOViT preferred only {result.mean_selection:.0%} (paper: 90%)"
    )
    assert result.std_selection < 0.25

    # The high-motion video masks artifacts -> weakest preference there.
    dynamic = result.per_video["video2-dynamic-outdoor"]
    others = [v for k, v in result.per_video.items() if k != "video2-dynamic-outdoor"]
    assert dynamic <= np.mean(others) + 0.05

    # The traces behind the preference really differ in the tail.
    cand_p95 = np.percentile(experiment.candidate_trace, 95)
    base_p95 = np.percentile(experiment.baseline_trace, 95)
    assert cand_p95 < base_p95
