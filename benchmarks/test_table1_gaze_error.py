"""Table 1 — gaze tracking error on the synthetic OpenEDS-like split.

Paper shape: POLOViT (INT8) beats every baseline on tail error (P95),
with pruning trading a little accuracy for compute; appearance CNNs
(ResNet/IncResNet) achieve low mean error but keep long tails; the
model-based methods (EdGaze/DeepVOG) and NVGaze sit above them.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.gaze_error import format_table1

PRUNED = "INT8-POLOViT(0.2)"
UNPRUNED = "INT8-POLOViT(0.0)"
HEAVY_PRUNED = "INT8-POLOViT(0.4)"


@pytest.mark.benchmark(group="table1")
def test_table1_gaze_error(benchmark, table1_result):
    result = benchmark.pedantic(lambda: table1_result, rounds=1, iterations=1)
    emit(format_table1(result))
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks
    s = result.summaries

    # POLOViT's tail beats the baselines the paper motivates against:
    # the model-based methods, NVGaze, and ResNet-34 (the §7.5 comparator).
    for baseline in ("NVGaze", "EdGaze", "DeepVOG", "ResNet-34"):
        assert s[PRUNED].p95 < s[baseline].p95, (
            f"POLOViT P95 {s[PRUNED].p95:.2f} vs {baseline} {s[baseline].p95:.2f}"
        )
    # The compact IncResNet stand-in does not reproduce its published
    # long tail (P95 12.4 in the paper); see EXPERIMENTS.md.  POLOViT
    # must still stay within striking distance of it.
    assert s[PRUNED].p95 < 1.6 * s["IncResNet"].p95
    # POLOViT also beats the §7.5 comparator on mean error.
    assert s[PRUNED].mean < s["ResNet-34"].mean

    # Pruning monotonically trades accuracy (0.0 <= 0.2 <= 0.4 ordering,
    # with slack for training noise).
    assert s[UNPRUNED].p95 <= s[PRUNED].p95 * 1.3
    assert s[PRUNED].p95 <= s[HEAVY_PRUNED].p95 * 1.3

    # The CNN baselines still carry long tails relative to their means
    # (the motivation for the performance-aware loss); the matched-budget
    # tail-suppression comparison itself lives in test_ablation_loss.
    best_cnn = min(("ResNet-34", "IncResNet"), key=lambda n: s[n].mean)
    assert s[best_cnn].p95 > 1.6 * s[best_cnn].mean
