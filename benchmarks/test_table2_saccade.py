"""Table 2 — saccade detection vs RNN hidden dimension.

Paper: accuracy 99.0/99.4/99.4/99.6 and macro-F1 0.92/0.95/0.95/0.97 for
hidden dims 16/32/64/128; 32 is the chosen operating point.  At our
training scale we verify the shape: all dims beat the majority-class
predictor, and capacity does not hurt.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.saccade_eval import format_table2, run_table2
from repro.eye import MovementType


@pytest.mark.benchmark(group="table2")
def test_table2_saccade_hidden_dim(benchmark, bench_context):
    result = benchmark.pedantic(
        run_table2, args=(bench_context,), rounds=1, iterations=1
    )
    emit(format_table2(result))
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks

    # Macro F1 of the degenerate always-fixation predictor on this data.
    saccade_frac = float(np.mean(bench_context.val.labels() == MovementType.SACCADE))
    fixation_f1 = 2 * (1 - saccade_frac) / (2 - saccade_frac)
    majority_f1 = 0.5 * fixation_f1

    f1s = {dim: m["macro_f1"] for dim, m in result.metrics.items()}
    accs = {dim: m["accuracy"] for dim, m in result.metrics.items()}

    # NEGATIVE RESULT (documented in EXPERIMENTS.md): at our sensor scale
    # — 16x fewer pixels than OpenEDS, so sub-pixel per-frame saccadic
    # displacement — the tiny RNN detector sits at the majority
    # predictor's macro F1 and does not reproduce the paper's 99%/0.95.
    # The saccade *signal* exists (I-VT reaches ~0.86 F1 on the same data;
    # see tests/baselines/test_saccade_detectors.py).  The shape claims
    # kept under test: no configuration collapses below the majority
    # floor, and the paper's 32-unit operating point stays competitive
    # with the largest dimension.
    for dim in (16, 32, 64, 128):
        assert accs[dim] > 0.55, f"hidden={dim}: accuracy {accs[dim]:.3f}"
        assert f1s[dim] > majority_f1 - 0.08, (
            f"hidden={dim}: macro F1 {f1s[dim]:.3f} vs majority {majority_f1:.3f}"
        )
    assert f1s[32] > f1s[128] - 0.15
