"""Benchmark-harness fixtures.

The benchmarks regenerate every table and figure of the paper's
evaluation.  Training-dependent experiments share one bench-scale
:class:`ExperimentContext` (built once per session); analytic experiments
need no training.  Each benchmark prints the same rows/series the paper
reports, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction report generator.

Set ``REPRO_BENCH_SCALE=tiny`` to smoke-test the harness quickly.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.common import ContextScale, ExperimentContext, get_context
from repro.experiments.e2e import measure_event_mix
from repro.experiments.gaze_error import GazeErrorResult, run_table1


def _scale() -> ContextScale:
    if os.environ.get("REPRO_BENCH_SCALE", "bench") == "tiny":
        return ContextScale.tiny()
    return ContextScale.bench()


#: Shape assertions that depend on *trained-model quality* only run at
#: bench scale; the tiny smoke mode still exercises every code path.
STRICT = os.environ.get("REPRO_BENCH_SCALE", "bench") != "tiny"


@pytest.fixture(scope="session")
def bench_context() -> ExperimentContext:
    """The shared trained context (datasets + POLONet + baselines)."""
    return get_context(_scale(), seed=0)


@pytest.fixture(scope="session")
def table1_result(bench_context) -> GazeErrorResult:
    """Table 1 is an input to several system benches (its P95 errors set
    the foveal regions), so it is computed once and shared."""
    return run_table1(bench_context)


@pytest.fixture(scope="session")
def measured_errors_p95(table1_result) -> dict:
    """Per-method P95 errors measured on the synthetic validation set."""
    summaries = table1_result.summaries
    errors = {
        name: summaries[name].p95
        for name in ("ResNet-34", "IncResNet", "EdGaze", "DeepVOG")
    }
    errors["POLO"] = summaries["INT8-POLOViT(0.2)"].p95
    return errors


@pytest.fixture(scope="session")
def measured_errors_mean(table1_result) -> dict:
    summaries = table1_result.summaries
    errors = {
        name: summaries[name].mean
        for name in ("ResNet-34", "IncResNet", "EdGaze", "DeepVOG")
    }
    errors["POLO"] = summaries["INT8-POLOViT(0.2)"].mean
    return errors


@pytest.fixture(scope="session")
def measured_event_mix(bench_context):
    return measure_event_mix(bench_context)


def emit(text: str) -> None:
    """Print a benchmark's reproduction table (visible with -s or -rA)."""
    print("\n" + text + "\n")


def emit_bench_json(name: str, payload: dict, metrics: "dict | None" = None) -> "Path":
    """Write ``BENCH_<name>.json`` at the repo root and return its path.

    Canonical JSON (sorted keys, repr-exact floats) so two runs of a
    deterministic bench produce byte-identical files; wall-clock fields
    are the one sanctioned exception.  These files are the machine-read
    counterpart of :func:`emit` — CI and campaign tooling pick them up
    without scraping pytest output.

    When ``metrics`` is given and ``REPRO_BENCH_LEDGER`` is set, the
    flattened metrics are also appended to the bench history ledger
    (``1`` means the tracked repo-root ``BENCH_HISTORY.jsonl``, any
    other value is a ledger path).  Env-gated so routine test runs
    never pollute the tracked trajectory.
    """
    from repro.recover.codec import canonical_json

    root = Path(__file__).resolve().parent.parent
    path = root / f"BENCH_{name}.json"
    path.write_text(canonical_json(payload) + "\n", encoding="utf-8")
    ledger_env = os.environ.get("REPRO_BENCH_LEDGER")
    if metrics is not None and ledger_env:
        from repro.bench.ledger import BENCH_LEDGER_NAME, append_bench_record

        ledger = (
            root / BENCH_LEDGER_NAME if ledger_env == "1" else Path(ledger_env)
        )
        append_bench_record(
            ledger, payload["bench"], metrics, context={"source": "pytest"}
        )
    return path
