"""Fig. 8a — gaze-error distributions of the baseline trackers.

Paper shape: model-based methods (DeepVOG, EdGaze) show moderate means
but extreme maxima; the appearance CNNs have lower means yet still carry
long tails relative to their medians.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.gaze_error import format_fig8a


@pytest.mark.benchmark(group="fig08a")
def test_fig08a_error_distributions(benchmark, table1_result):
    result = benchmark.pedantic(lambda: table1_result, rounds=1, iterations=1)
    emit(format_fig8a(result))
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks
    s = result.summaries

    for name in ("DeepVOG", "EdGaze", "ResNet-34", "IncResNet"):
        summary = s[name]
        # The distributions are heavy-tailed: the max dwarfs the p5.
        assert summary.maximum > 4 * max(summary.p5, 0.2)
        assert summary.minimum >= 0.0
        assert summary.p5 <= summary.mean <= summary.maximum

    # Model-based maxima exceed the CNN baselines' (segmentation failures).
    model_based_max = min(s["DeepVOG"].maximum, s["EdGaze"].maximum)
    assert model_based_max > 0.5 * max(s["ResNet-34"].maximum, s["IncResNet"].maximum)
