"""Hardware design-choice ablations called out in DESIGN.md.

* Array design space: under the paper's fixed compute-engine area, the
  INT8 16x16 array beats the FP16 alternative on both latency and
  energy for POLOViT — the architectural argument for quantizing.
* IPU bit-level datapaths: the bit-level XOR/adder-tree front end costs
  orders of magnitude less than running the same preprocessing as
  byte-wide DNN ops on the systolic engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core import GazeViTConfig
from repro.core.gaze_vit import vit_workload
from repro.hw import (
    Accelerator,
    AcceleratorConfig,
    AreaTable,
    IpuModel,
    MatMulOp,
    polo_accelerator,
)
from repro.system.metrics import table_to_text


@pytest.mark.benchmark(group="ablation-array")
def test_ablation_array_precision_at_equal_area(benchmark):
    ops = vit_workload(GazeViTConfig.paper())
    area = AreaTable()

    def run_designs():
        designs = {}
        int8 = polo_accelerator()
        designs["int8 16x16"] = int8.run(ops)
        dim = area.equal_area_array_dim(16, 16, "int8", "fp16")
        fp16 = Accelerator(
            AcceleratorConfig(name="fp16-equal-area", rows=dim, cols=dim, precision="fp16")
        )
        designs[f"fp16 {dim}x{dim}"] = fp16.run(ops)
        return designs

    designs = benchmark.pedantic(run_designs, rounds=1, iterations=1)

    rows = [
        [name, f"{r.latency_s * 1e3:.1f}", f"{r.energy.total_j * 1e3:.2f}", f"{r.utilization:.2f}"]
        for name, r in designs.items()
    ]
    emit(
        "Ablation — datapath precision at equal compute area (POLOViT)\n"
        + table_to_text(["Design", "Latency(ms)", "Energy(mJ)", "Utilization"], rows)
    )

    int8 = designs["int8 16x16"]
    fp16 = next(r for n, r in designs.items() if n.startswith("fp16"))
    assert int8.latency_s < 0.5 * fp16.latency_s
    assert int8.energy.total_j < fp16.energy.total_j


@pytest.mark.benchmark(group="ablation-ipu")
def test_ablation_ipu_bit_level_vs_engine(benchmark):
    """§7.1: the IPU's bit-level datapaths eliminate byte-level overhead.

    Comparator: executing the same pooling/diff arithmetic as GEMMs on
    the systolic engine (the natural alternative to dedicated hardware).
    """
    ipu = IpuModel()
    frame_shape = (400, 640)
    binary = np.zeros((100, 160), dtype=np.uint8)
    binary[45:55, 75:85] = 1

    def run_both():
        dedicated = ipu.frame_cost(frame_shape, 4, binary, 5, "predict")
        # Engine alternative: pooling as a (pixels/16 x 16) x 1 GEMM plus
        # the diff/search as elementwise-sized GEMM traffic.
        engine = polo_accelerator().run(
            [
                MatMulOp(m=frame_shape[0] * frame_shape[1] // 16, k=16, n=1),
                MatMulOp(m=100 * 160, k=2, n=1),
                MatMulOp(m=100 * 160, k=25, n=1),
            ]
        )
        return dedicated, engine

    dedicated, engine = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "Ablation — IPU bit-level front end vs systolic-engine equivalent\n"
        + table_to_text(
            ["Implementation", "Cycles", "Energy(uJ)"],
            [
                ["dedicated IPU", f"{dedicated.cycles}", f"{dedicated.energy.total_j * 1e6:.4f}"],
                ["systolic engine", f"{engine.cycles}", f"{engine.energy.total_j * 1e6:.4f}"],
            ],
        )
    )
    assert dedicated.cycles < engine.cycles
    assert dedicated.energy.total_j < engine.energy.total_j
