"""Table 3 — saccade macro-F1 vs binarization threshold gamma1.

Paper: F1 of 0.93/0.95/0.94/0.94 for gamma1 = 35/40/45/50 — a broad
plateau with 40 on top.  We verify the plateau shape: every threshold in
the band works, and the band's spread is small.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.saccade_eval import format_table3, run_table3


@pytest.mark.benchmark(group="table3")
def test_table3_gamma1(benchmark, bench_context):
    result = benchmark.pedantic(
        run_table3, args=(bench_context,), rounds=1, iterations=1
    )
    emit(format_table3(result))
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks

    f1s = {g: m["macro_f1"] for g, m in result.metrics.items()}
    # The plateau claim survives at our scale even though absolute F1
    # does not (see the Table 2 negative-result note): every threshold
    # in the band trains to a usable detector rather than collapsing,
    # and the spread across the band stays small.
    for gamma1, f1 in f1s.items():
        assert f1 > 0.3, f"gamma1={gamma1}: macro F1 {f1:.3f}"
    assert max(f1s.values()) > 0.45
    values = np.array(list(f1s.values()))
    assert values.max() - values.min() < 0.3
