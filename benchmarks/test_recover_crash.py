"""Crash-recovery acceptance: kill the fleet, restore it, byte-diff it.

The durability contract has three legs, each benched here:

* **Bit-identity** — kill the serving runtime at an early, mid, and late
  event index; after restore + journal replay, the final FleetReport is
  *byte-equal* (canonical JSON) to the same-seed uninterrupted run.
* **Zero simulated overhead** — checkpointing and journaling happen
  between events and never touch sim-state, so every simulated metric
  (goodput, miss rate, accounting) is identical with durability on: the
  "0% simulated-goodput overhead" budget is met exactly, not within a
  tolerance.
* **Bounded wall overhead** — snapshots + WAL appends cost real time;
  best-of-N against the bare run with a deliberately loose guard (shared
  CI is noisy; the byte-identity legs are the hard gates).
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from benchmarks.conftest import emit
from repro.faults import ProcessKill, SimulatedCrash, default_chaos_scenario
from repro.faults.runtime import ChaosRuntime
from repro.recover import fleet_report_bytes, restore_runtime, resume, run_with_checkpoints
from repro.serve import ServeConfig, ServeRuntime
from repro.system import table_to_text

#: Same predict-heavy regime as the serve-scaling/obs benches.
CONFIG = ServeConfig(
    n_sessions=32,
    duration_s=1.0,
    n_workers=2,
    reuse_displacement_deg=0.05,
    queue_budget_deadlines=0.8,
    seed=0,
)

CHECKPOINT_EVERY = 1000


def _total_events() -> int:
    runtime = ServeRuntime(CONFIG)
    runtime.run()
    return runtime.events_processed


def _crash_and_recover(directory, kill_at: int):
    runtime = ServeRuntime(CONFIG)
    with pytest.raises(SimulatedCrash):
        run_with_checkpoints(
            runtime, directory, every=CHECKPOINT_EVERY,
            kill=ProcessKill(at_event=kill_at),
        )
    restored = restore_runtime(directory)
    report = run_with_checkpoints(
        restored.runtime, directory, every=CHECKPOINT_EVERY, _resume=True
    )
    return report, restored


def _best_of(fn, rounds: int = 3) -> float:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


@pytest.mark.benchmark(group="recover")
def test_crash_recovery_is_bit_identical_at_three_kill_points(
    benchmark, tmp_path
):
    total = _total_events()
    kill_points = {
        "early": max(1, total // 20),
        "mid": total // 2,
        "late": total - 2,
    }
    baseline = ServeRuntime(CONFIG).run()
    baseline_bytes = fleet_report_bytes(baseline)

    def run_all():
        results = {}
        for label, kill_at in kill_points.items():
            directory = tmp_path / label
            results[label] = (kill_at, *_crash_and_recover(directory, kill_at))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, (kill_at, report, restored) in results.items():
        identical = fleet_report_bytes(report) == baseline_bytes
        rows.append([
            label, str(kill_at),
            str(restored.checkpoint.event_index),
            str(restored.replayed_events),
            f"{report.predict_goodput_fps:.2f}",
            "yes" if identical else "NO",
        ])
    emit(table_to_text(
        ["Kill", "Event", "Ckpt", "Replayed", "Goodput/s", "Bit-identical"],
        rows,
    ))
    for label, (kill_at, report, _) in results.items():
        assert fleet_report_bytes(report) == baseline_bytes, (
            f"recovered report diverged for {label} kill at event {kill_at}"
        )
    # The late kill must actually have exercised journal replay.
    assert results["late"][2].replayed_events > 0


@pytest.mark.benchmark(group="recover")
def test_chaos_crash_recovery_is_bit_identical(benchmark, tmp_path):
    chaos = default_chaos_scenario(seed=3)
    chaos = replace(
        chaos, serve=replace(chaos.serve, n_sessions=16, duration_s=1.0)
    )
    baseline_bytes = fleet_report_bytes(ChaosRuntime(chaos).run())

    probe = ChaosRuntime(chaos)
    probe.run()
    kill_at = probe.events_processed // 2

    def crash_and_resume():
        runtime = ChaosRuntime(chaos)
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                runtime, tmp_path, every=300, kill=ProcessKill(at_event=kill_at)
            )
        return resume(tmp_path)

    report = benchmark.pedantic(crash_and_resume, rounds=1, iterations=1)
    identical = fleet_report_bytes(report) == baseline_bytes
    emit(table_to_text(
        ["Runtime", "Kill event", "Bit-identical"],
        [["chaos", str(kill_at), "yes" if identical else "NO"]],
    ))
    assert identical


@pytest.mark.benchmark(group="recover")
def test_checkpointing_overhead(benchmark, tmp_path):
    """0% simulated-goodput overhead (exact) + bounded wall overhead."""
    plain = ServeRuntime(CONFIG).run()

    def durable():
        return run_with_checkpoints(
            ServeRuntime(CONFIG), tmp_path, every=CHECKPOINT_EVERY
        )

    durable_report = benchmark.pedantic(durable, rounds=1, iterations=1)

    base_s = _best_of(lambda: ServeRuntime(CONFIG).run())
    durable_s = _best_of(durable)
    ratio = durable_s / base_s

    emit(table_to_text(
        ["Mode", "Goodput/s", "Miss", "Wall(ms)", "Ratio"],
        [
            ["bare", f"{plain.predict_goodput_fps:.2f}",
             f"{plain.deadline_miss_rate:.2%}", f"{base_s * 1e3:.1f}", "1.00x"],
            ["durable", f"{durable_report.predict_goodput_fps:.2f}",
             f"{durable_report.deadline_miss_rate:.2%}",
             f"{durable_s * 1e3:.1f}", f"{ratio:.2f}x"],
        ],
    ))
    # Durability is invisible to the simulation: exactly zero overhead on
    # every simulated metric, proven byte-for-byte.
    assert fleet_report_bytes(durable_report) == fleet_report_bytes(plain)
    assert durable_report.predict_goodput_fps == plain.predict_goodput_fps
    # Loose wall guard: one full-state snapshot per 1000 events plus one
    # WAL line per event measures ~2.7x locally; 5x headroom absorbs
    # shared-CI filesystem noise.
    assert ratio < 5.0
