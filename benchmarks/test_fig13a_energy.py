"""Fig. 13a — per-frame gaze-tracking energy breakdown per algorithm.

Paper shape: POLO consumes ~4.1x less energy than the baseline average;
buffer (memory) access dominates, followed by the systolic array, then
the SFU.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.energy_eval import format_fig13a, run_fig13a
from repro.experiments.profiles import SYSTEM_BASELINES


@pytest.mark.benchmark(group="fig13a")
def test_fig13a_energy_breakdown(benchmark):
    result = benchmark(run_fig13a)
    emit(format_fig13a(result))

    polo_mj = result.total_mj("POLO")
    for name in SYSTEM_BASELINES:
        assert result.total_mj(name) > 1.5 * polo_mj

    reduction = result.polo_reduction()
    assert 2.0 < reduction < 10.0, f"energy reduction {reduction:.1f}x vs paper 4.1x"

    for name, breakdown in result.breakdowns.items():
        fr = breakdown.fractions()
        assert fr["buffer"] > fr["mac"] > fr["sfu"], (
            f"{name}: expected buffer > MAC > SFU, got {fr}"
        )
