"""Fig. 12 / §7.1 — end-to-end TFR latency across scenes, resolutions,
and methods, with the event-mix-averaged POLO speedups.

Paper shape: POLO_S < POLO_R < POLO_N everywhere; POLO_N beats every
baseline and full-resolution rendering; POLO_N speedups of ~2.46/2.06/
1.85x vs the baseline average at 720/1080/1440P, rising to ~3.42/2.50/
2.09x once saccade/reuse gating is averaged in; POLO_N average latencies
of ~26/44/69 ms.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.e2e import format_fig12, run_fig12
from repro.render import RESOLUTIONS, SCENES


@pytest.mark.benchmark(group="fig12")
def test_fig12_e2e_latency(
    benchmark, measured_errors_p95, measured_errors_mean, measured_event_mix
):
    result = benchmark.pedantic(
        run_fig12,
        args=(measured_errors_p95,),
        kwargs={
            "errors_mean": measured_errors_mean,
            "event_mix": measured_event_mix,
        },
        rounds=1,
        iterations=1,
    )
    emit(
        format_fig12(result)
        + f"\nEvent mix: {measured_event_mix}"
    )
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks

    # POLO path ordering and dominance on every scene/resolution.
    for res in RESOLUTIONS:
        for scene in SCENES:
            s = result.method_latency[("POLO_S", scene.name, res.name)]
            r = result.method_latency[("POLO_R", scene.name, res.name)]
            n = result.method_latency[("POLO_N", scene.name, res.name)]
            assert s < r < n
            for name in ("ResNet-34", "IncResNet", "EdGaze", "DeepVOG"):
                assert n < result.method_latency[(name, scene.name, res.name)]

    summary = result.speedup_summary()
    paper_n_speedup = {"720P": 2.46, "1080P": 2.06, "1440P": 1.85}
    paper_avg_speedup = {"720P": 3.42, "1080P": 2.50, "1440P": 2.09}
    for res, paper in paper_n_speedup.items():
        measured = summary[res]["polo_n_speedup"]
        assert 0.5 * paper < measured < 2.0 * paper, (
            f"{res} POLO_N speedup {measured:.2f} vs paper {paper}"
        )
    for res, paper in paper_avg_speedup.items():
        measured = summary[res]["polo_avg_speedup"]
        assert 0.5 * paper < measured < 2.0 * paper
        # Event gating can only help.
        assert measured >= summary[res]["polo_n_speedup"] - 1e-9

    # POLO_N absolute latencies in the paper's band (26/44/69 ms).
    for res, paper_ms in {"720P": 26.0, "1080P": 44.0, "1440P": 69.0}.items():
        assert summary[res]["polo_n_ms"] == pytest.approx(paper_ms, rel=0.5)
