"""Ablation — the Eq. 5 performance-aware loss vs plain MSE.

Not a table in the paper, but the design choice §4.3 motivates with
Fig. 8: minimizing the average error leaves a long tail, and the tail
(P95) is what sets the foveal radius.  Trains two identical POLOViTs on
identical data and compares their error tails and the rendering latency
each tail buys.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import STRICT, emit
from repro.baselines import angular_errors
from repro.core import GazeViTConfig, PoloViT, build_crop_dataset, train_polovit
from repro.experiments.common import MIN_OPENNESS
from repro.render import RES_1080P, RenderPipeline, scene_by_name
from repro.system.metrics import table_to_text


@pytest.mark.benchmark(group="ablation-loss")
def test_ablation_performance_loss_vs_mse(benchmark, bench_context):
    crops, gaze = build_crop_dataset(
        bench_context.train, bench_context.polonet_config
    )
    val_crops, val_gaze = build_crop_dataset(
        bench_context.val, bench_context.polonet_config, min_openness=MIN_OPENNESS
    )
    # The ablation compares loss functions under identical (reduced)
    # budgets; the headline Table 1 models use the full epoch budget.
    epochs = min(bench_context.scale.vit_epochs, 12)

    def train_both():
        errors = {}
        for loss in ("mse", "performance"):
            vit = PoloViT(GazeViTConfig.compact(), seed=11)
            train_polovit(vit, crops, gaze, epochs=epochs, loss=loss, seed=11)
            errors[loss] = angular_errors(vit.predict(val_crops, prune=False), val_gaze)
        return errors

    errors = benchmark.pedantic(train_both, rounds=1, iterations=1)

    pipeline = RenderPipeline()
    scene = scene_by_name("E")
    rows = []
    stats = {}
    for loss, errs in errors.items():
        p95 = float(np.percentile(errs, 95))
        render_ms = pipeline.foveated_latency(scene, RES_1080P, p95).total_s * 1e3
        stats[loss] = {"mean": errs.mean(), "p95": p95, "render_ms": render_ms}
        rows.append(
            [loss, f"{errs.mean():.2f}", f"{p95:.2f}", f"{errs.max():.2f}", f"{render_ms:.1f}"]
        )
    emit(
        "Ablation — loss function vs error tail (scene E, 1080P)\n"
        + table_to_text(["Loss", "Mean(deg)", "P95(deg)", "Max(deg)", "Render(ms)"], rows)
    )

    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks
    # The performance-aware tail is no worse, and buys rendering latency.
    assert stats["performance"]["p95"] <= stats["mse"]["p95"] * 1.1
    assert stats["performance"]["render_ms"] <= stats["mse"]["render_ms"] * 1.1
