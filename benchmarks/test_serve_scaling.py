"""Serving-runtime scaling: cross-session batching vs per-session dispatch.

Sweeps fleet sizes over the same worker pool and compares the dynamic
batcher against the sequential (``max_batch=1``) baseline on the identical
fleet.  The acceptance claim: under predict-heavy load the batched runtime
serves strictly more fresh predictions per second at a deadline-miss rate
no worse than sequential.  A second bench measures real wall-clock of the
vectorized POLOViT batch forward against the per-sample loop it replaced.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import emit, emit_bench_json
from repro.bench.suites import (
    flatten_serve_payload,
    run_serve_scaling,
    serve_payload,
)
from repro.core import GazeViTConfig, PoloViT
from repro.system import table_to_text


@pytest.mark.benchmark(group="serve")
def test_cross_session_batching_beats_sequential(benchmark):
    # The sweep itself lives in repro.bench.suites — the same callable
    # ``python -m repro bench run --suite serve`` executes, so the
    # pytest bench and the history ledger can never drift apart.
    rows, wall_s = benchmark.pedantic(run_serve_scaling, rounds=1, iterations=1)

    table = []
    for n, batched, sequential in rows:
        ratio = batched.predict_goodput_fps / max(sequential.predict_goodput_fps, 1e-9)
        table.append([
            n,
            f"{batched.predict_goodput_fps:.0f}",
            f"{sequential.predict_goodput_fps:.0f}",
            f"{ratio:.2f}x",
            f"{batched.deadline_miss_rate:.2%}",
            f"{sequential.deadline_miss_rate:.2%}",
            f"{batched.mean_batch_size:.2f}",
        ])
    emit(table_to_text(
        ["Sessions", "Batched/s", "Seq/s", "Gain", "Miss(b)", "Miss(s)", "MeanB"],
        table,
        min_width=8,
    ))
    payload = serve_payload(rows, wall_s)
    emit_bench_json("serve", payload, metrics=flatten_serve_payload(payload))

    for n, batched, sequential in rows:
        # Conservation: every frame is accounted for in both runs.
        assert batched.total_frames == sequential.total_frames
        # The headline claim, at every fleet size where the pool saturates.
        if n >= 16:
            assert batched.predict_goodput_fps > sequential.predict_goodput_fps
            assert batched.deadline_miss_rate <= sequential.deadline_miss_rate + 1e-9
    # Gains grow with contention: more sessions -> fuller batches.
    mean_batches = [b.mean_batch_size for _, b, _ in rows]
    assert mean_batches[-1] > mean_batches[0]


@pytest.mark.benchmark(group="serve")
def test_batched_vit_forward_wall_clock(benchmark):
    """One vectorized forward over B crops vs B single-sample forwards.

    On accelerators the batched dispatch amortizes per-call weight traffic
    (the ``BatchServiceModel`` story); in this numpy reference both modes
    are BLAS-bound, so the check is numerical equivalence plus a bound on
    the padding overhead the masked batched path is allowed to add.
    """
    vit = PoloViT(GazeViTConfig.compact(), seed=0)
    rng = np.random.default_rng(0)
    crops = rng.uniform(size=(8, 72, 72))

    def batched():
        return vit.predict(crops, prune=False)

    def looped():
        return np.stack([
            vit.predict(crops[i : i + 1], prune=False)[0] for i in range(len(crops))
        ])

    batch_pred = benchmark.pedantic(batched, rounds=3, iterations=1)
    loop_pred = looped()

    def best_of(fn, n=3):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    loop_s = best_of(looped)
    batch_s = best_of(batched)

    np.testing.assert_allclose(batch_pred, loop_pred, atol=1e-6)
    emit(table_to_text(
        ["Mode", "Wall(ms)", "Per-crop(ms)"],
        [
            ["batched", f"{batch_s * 1e3:.1f}", f"{batch_s / 8 * 1e3:.2f}"],
            ["loop", f"{loop_s * 1e3:.1f}", f"{loop_s / 8 * 1e3:.2f}"],
        ],
    ))
    assert batch_s < loop_s * 1.5
