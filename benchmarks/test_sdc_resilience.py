"""SDC resilience acceptance: ABFT coverage, overhead honesty, bit-identity.

The ISSUE's acceptance claims, verified end to end:

* With injection disabled, an ABFT-wrapped model forward is
  **bit-identical** to the unprotected one — protection is free of
  numerical side effects.
* At the default FIT sweep, the ABFT-protected datapath corrects or
  recomputes >= 99% of injected datapath errors (zero escaped SDC),
  while the unprotected run leaks corruption straight to the output.
* The reported protection cost is *measured* on the accelerator model:
  checksum rows/columns are real systolic work, visible in cycles and
  energy — not a free annotation.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit, emit_bench_json
from repro.core import GazeViTConfig, PoloViT
from repro.nn import matmul_guard
from repro.reliability import (
    AbftGuard,
    default_sdc_campaign,
    format_sdc_report,
    run_sdc_campaign,
)


@pytest.fixture(scope="module")
def report():
    return run_sdc_campaign(default_sdc_campaign())


@pytest.fixture(scope="module")
def campaign_wall_s():
    """Wall clock of one full campaign, timed separately so the shared
    ``report`` fixture's first-use cost never pollutes the number."""
    import time

    t0 = time.perf_counter()
    run_sdc_campaign(default_sdc_campaign())
    return time.perf_counter() - t0


class TestBitIdentityWhenClean:
    def test_abft_wrapped_vit_forward_is_bit_identical(self):
        vit = PoloViT(GazeViTConfig.compact(), seed=0)
        crops = np.random.default_rng(0).uniform(size=(4, 72, 72))
        unprotected = vit.predict(crops, prune=False)
        guard = AbftGuard()
        with matmul_guard(guard):
            protected = vit.predict(crops, prune=False)
        assert np.array_equal(protected, unprotected)
        assert guard.stats.products > 0
        assert guard.stats.detected == 0


class TestCoverageAcceptance:
    def test_abft_corrects_or_recomputes_99_percent(self, report):
        for run in report.runs_for("abft"):
            assert run.coverage >= 0.99, (
                f"FIT {run.fit_per_mbit}: coverage {run.coverage:.3f}"
            )
            assert run.escaped_sdc == 0
            assert run.detected == run.corrected + run.recomputed

    def test_unprotected_leaks_sdc(self, report):
        leaks = [
            r for r in report.runs_for("unprotected") if r.corrupted_frames
        ]
        assert leaks, "campaign injected no corrupting faults"
        for run in leaks:
            assert run.escaped_sdc > 0
            assert run.p95_error_deg > report.config.sdc_threshold_deg

    def test_guard_only_narrows_but_does_not_close_the_gap(self, report):
        for run in report.runs_for("guard"):
            if not run.corrupted_frames:
                continue
            unprot = next(
                r for r in report.runs_for("unprotected")
                if r.fit_per_mbit == run.fit_per_mbit
            )
            assert run.p95_error_deg <= unprot.p95_error_deg


class TestOverheadHonesty:
    def test_overhead_is_measured_and_bounded(self, report):
        assert report.protected_cycles > report.unprotected_cycles
        assert report.abft_cycles > 0
        assert 0.05 < report.cycle_overhead < 0.40
        assert (
            report.protected_cycles - report.unprotected_cycles
            <= report.abft_cycles
        )


class TestDeterminism:
    def test_report_reproduces_bit_identically(self, report):
        again = run_sdc_campaign(default_sdc_campaign())
        assert format_sdc_report(again) == format_sdc_report(report)


def test_emit_report(report, campaign_wall_s):
    from repro.bench.suites import flatten_sdc_payload, sdc_payload

    emit(format_sdc_report(report))
    payload = sdc_payload(report, campaign_wall_s)
    emit_bench_json("sdc", payload, metrics=flatten_sdc_payload(payload))
