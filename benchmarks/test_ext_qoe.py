"""Extension benchmarks (paper §8 future work): latency QoE and saccade
misdetection sensitivity, plus the Eq. 8 FPS table."""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.extensions import (
    format_latency_qoe,
    format_saccade_sensitivity,
    run_latency_qoe,
    run_saccade_sensitivity,
)
from repro.experiments.fps_eval import format_fps, run_fps
from repro.experiments.profiles import paper_reference_errors


@pytest.mark.benchmark(group="ext-qoe")
def test_extension_latency_qoe(benchmark):
    errors = paper_reference_errors(0.2)
    result = benchmark.pedantic(run_latency_qoe, args=(errors,), rounds=1, iterations=1)
    emit(format_latency_qoe(result))

    # POLO stays comfortable (QoE ~1) at 720P/1080P; heavyweight methods
    # collapse past the 70 ms band.
    assert result.qoe[("POLO_N", "720P")] > 0.9
    assert result.qoe[("POLO_N", "1080P")] > 0.75
    assert result.qoe[("DeepVOG", "1080P")] < 0.2
    for res in ("720P", "1080P", "1440P"):
        assert result.best_method(res) == "POLO_N"


@pytest.mark.benchmark(group="ext-fps")
def test_extension_fps(benchmark, measured_event_mix):
    errors = paper_reference_errors(0.2)
    result = benchmark.pedantic(
        run_fps, args=(errors, measured_event_mix), rounds=1, iterations=1
    )
    emit(format_fps(result))

    from repro.system import Schedule

    # POLO sustains the highest frame rate everywhere; parallel >= sequential.
    for res in ("720P", "1080P", "1440P"):
        polo_par = result.get("POLO", res, Schedule.PARALLEL)
        assert polo_par >= result.get("POLO", res, Schedule.SEQUENTIAL) - 1e-9
        for name in ("ResNet-34", "IncResNet", "EdGaze", "DeepVOG"):
            assert polo_par > result.get(name, res, Schedule.PARALLEL)
    # 720P parallel POLO exceeds a 30 FPS floor comfortably.
    assert result.get("POLO", "720P", Schedule.PARALLEL) > 30


@pytest.mark.benchmark(group="ext-saccade-sensitivity")
def test_extension_saccade_sensitivity(benchmark, bench_context, measured_errors_p95):
    result = benchmark.pedantic(
        run_saccade_sensitivity,
        args=(bench_context, measured_errors_p95),
        rounds=1,
        iterations=1,
    )
    emit(format_saccade_sensitivity(result))
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks

    points = result.points
    thresholds = sorted(points)
    # Raising the threshold can only reduce false positives.
    fprs = [points[t]["fpr"] for t in thresholds]
    assert all(a >= b - 1e-9 for a, b in zip(fprs, fprs[1:]))
    # QoE improves (or holds) as false positives drop.
    qoes = [points[t]["qoe"] for t in thresholds]
    assert all(a <= b + 1e-9 for a, b in zip(qoes, qoes[1:]))
