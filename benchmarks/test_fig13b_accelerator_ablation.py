"""Fig. 13b — TFR latency with vs without the gaze-tracking accelerator.

Paper shape: moving gaze processing onto the rendering GPU inflates TFR
latency by 1.68-2.33x per method (POLO_N by ~1.9x on average), and POLO
remains the fastest option even GPU-only.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.ablations import format_fig13b, run_fig13b

PAPER_RATIOS = {
    "POLO_N": 1.68,
    "ResNet-34": 2.33,
    "IncResNet": 1.79,
    "EdGaze": 1.78,
    "DeepVOG": 1.96,
}


@pytest.mark.benchmark(group="fig13b")
def test_fig13b_accelerator_ablation(benchmark, measured_errors_p95):
    result = benchmark.pedantic(
        run_fig13b, args=(measured_errors_p95,), rounds=1, iterations=1
    )
    emit(format_fig13b(result))
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks

    for name, paper_ratio in PAPER_RATIOS.items():
        measured = result.ratio(name)
        assert measured > 1.1, f"{name}: GPU-only must be slower"
        assert 0.5 * paper_ratio < measured < 2.0 * paper_ratio, (
            f"{name}: ratio {measured:.2f} vs paper {paper_ratio}"
        )

    # POLO stays fastest with and without the accelerator.
    for name in ("ResNet-34", "IncResNet", "EdGaze", "DeepVOG"):
        assert result.with_accel_ms["POLO_N"] < result.with_accel_ms[name]
        assert result.gpu_only_ms["POLO_N"] < result.gpu_only_ms[name]
