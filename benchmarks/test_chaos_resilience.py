"""Chaos resilience: graceful degradation under escalating fault pressure.

Sweeps sensor frame-drop rates over the canonical two-worker scenario
(worker stall + crash + latency spike) and compares each run against the
fault-free replay of the identical fleet.  The acceptance claims: the
conservation ledger closes at every pressure level (no frame is ever
silently dropped), the deadline-miss rate stays within 2x the fault-free
baseline (failures degrade to stale-but-on-time reuse instead of going
late), and the same seed reproduces bit-identical fault telemetry.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import emit
from repro.faults import default_chaos_scenario, run_chaos
from repro.system import table_to_text

DROP_RATES = (0.0, 0.05, 0.10, 0.20)


def _assert_conserved(config, report):
    expected = config.serve.n_sessions * config.serve.frames_per_session
    assert report.total_frames == expected
    for stats in report.sessions:
        assert (
            stats.completed + stats.shed + stats.pending + stats.lost_input
            == config.serve.frames_per_session
        )


@pytest.mark.benchmark(group="chaos")
def test_degradation_stays_graceful_under_fault_pressure(benchmark):
    base = default_chaos_scenario(seed=0)

    def sweep():
        baseline = run_chaos(base.fault_free())
        rows = []
        for rate in DROP_RATES:
            config = replace(
                base, input_faults=replace(base.input_faults, frame_drop_rate=rate)
            )
            rows.append((rate, config, run_chaos(config)))
        return baseline, rows

    baseline, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base_miss = baseline.deadline_miss_rate
    table = []
    for rate, _, report in rows:
        faults = report.faults
        table.append([
            f"{rate:.0%}",
            report.completed_frames,
            report.lost_input_frames,
            sum(s.degraded for s in report.sessions),
            faults.batch_failures,
            faults.retries_scheduled,
            f"{report.deadline_miss_rate:.2%}",
        ])
    emit(table_to_text(
        ["Drop", "Served", "Lost", "Degraded", "BatchFail", "Retries", "Miss"],
        table,
        min_width=8,
    ))
    emit(
        f"fault-free baseline: {baseline.completed_frames} served, "
        f"{base_miss:.2%} miss"
    )

    # The clean replay really is clean.
    assert baseline.faults.input_dropped == 0
    assert baseline.faults.batch_failures == 0
    assert baseline.lost_input_frames == 0

    for rate, config, report in rows:
        # No silent loss at any pressure level.
        _assert_conserved(config, report)
        # Graceful: faults surface as accounted degradation, not lateness.
        assert report.deadline_miss_rate <= max(2.0 * base_miss, 1e-3)

    # Input-fault pressure shows up monotonically in the lost-frame ledger.
    lost = [report.lost_input_frames for _, _, report in rows]
    assert lost == sorted(lost) and lost[-1] > lost[0]
    # The worker-fault schedule actually bit: recovery machinery engaged.
    assert any(r.faults.batch_failures > 0 for _, _, r in rows)

    # Same seed, same telemetry — the resilience story is reproducible.
    again = run_chaos(rows[-1][1])
    assert again.faults == rows[-1][2].faults
