"""Table 5 — average 1080P TFR latency vs token-pruning ratio, plus the
Vive Pro Eye commercial comparison.

Paper: 47.6/46.6/45.4/46.0/47.9 ms at pruning 0/10/20/30/40% — a shallow
bowl with its minimum at 20% — and 86.7 ms for the Vive Pro Eye (1.91x
slower than POLO_N).  The bench sweeps the same ratios using the
measured POLOViT errors where Table 1 provides them.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.pruning_sweep import (
    PAPER_ERROR_BY_RATIO,
    format_table5,
    run_table5,
)


def _measured_errors_by_ratio(table1_result) -> dict:
    """Measured P95 at 0/0.2/0.4; 0.1 and 0.3 interpolated (the paper
    itself reports errors only at the Table 1 ratios)."""
    s = table1_result.summaries
    e0 = s["INT8-POLOViT(0.0)"].p95
    e2 = s["INT8-POLOViT(0.2)"].p95
    e4 = s["INT8-POLOViT(0.4)"].p95
    return {0.0: e0, 0.1: (e0 + e2) / 2, 0.2: e2, 0.3: (e2 + e4) / 2, 0.4: e4}


@pytest.mark.benchmark(group="table5")
def test_table5_pruning_sweep(benchmark, table1_result):
    errors = _measured_errors_by_ratio(table1_result)
    result = benchmark.pedantic(
        run_table5, args=(errors,), rounds=1, iterations=1
    )
    emit(format_table5(result))
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks

    # The gaze/render trade-off: gaze latency falls with pruning while
    # rendering latency (driven by the measured error) trends upward —
    # within a small tolerance, since measured errors carry training
    # noise of a few tenths of a degree between adjacent ratios.
    gaze = list(result.gaze_ms.values())
    assert all(a > b for a, b in zip(gaze, gaze[1:]))
    render = list(result.render_ms.values())
    assert all(a <= b + 1.0 for a, b in zip(render, render[1:]))
    assert render[-1] >= render[0] - 1.0

    # The bowl is shallow (paper spread is ~2.5 ms over a ~46 ms base).
    # With *measured* errors the bowl can flatten toward an edge when the
    # compact model's pruning-accuracy cost is small; the interior-minimum
    # crossover itself is asserted on the paper's error points in
    # test_table5_paper_reference_errors below.
    latencies = result.latency_ms
    spread = max(latencies.values()) - min(latencies.values())
    assert spread < 0.35 * min(latencies.values())

    # Commercial comparison: Vive Pro Eye ~1.9x slower than POLO.
    vive_ratio = result.vive_ms / latencies[0.2]
    assert 1.4 < vive_ratio < 2.6, f"Vive ratio {vive_ratio:.2f} vs paper 1.91x"
    assert result.vive_ms == pytest.approx(86.7, rel=0.2)


@pytest.mark.benchmark(group="table5")
def test_table5_paper_reference_errors(benchmark):
    """The same sweep at the paper's exact error points lands the minimum
    at 20% — the published operating choice."""
    result = benchmark.pedantic(
        run_table5, args=(PAPER_ERROR_BY_RATIO,), rounds=1, iterations=1
    )
    assert result.best_ratio() == pytest.approx(0.2)
