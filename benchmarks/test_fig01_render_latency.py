"""Fig. 1 — full-resolution ray-traced rendering latency.

Paper: averages of 80 / 155 / 282 ms at 720P / 1080P / 1440P across the
scene suite, with per-frame times ranging from ~20 ms to ~700 ms.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments.rendering import format_fig1, run_fig1
from repro.render import RESOLUTIONS, SCENES

PAPER_AVERAGES_MS = {"720P": 80.0, "1080P": 155.0, "1440P": 282.0}


@pytest.mark.benchmark(group="fig01")
def test_fig01_rendering_latency(benchmark):
    result = benchmark(run_fig1)
    emit(format_fig1(result))

    for res, paper_ms in PAPER_AVERAGES_MS.items():
        measured = result.averages_ms[res]
        assert measured == pytest.approx(paper_ms, rel=0.25), (
            f"{res}: measured {measured:.0f}ms vs paper {paper_ms:.0f}ms"
        )
    all_ms = list(result.latencies_ms.values())
    assert min(all_ms) < 40.0
    assert max(all_ms) > 450.0
    # Latency grows with both scene complexity and resolution.
    for res in RESOLUTIONS:
        per_scene = [result.latency(s.name, res.name) for s in SCENES]
        assert per_scene == sorted(per_scene)
