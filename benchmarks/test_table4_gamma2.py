"""Table 4 — reused-frame gaze error vs the reuse threshold gamma2.

Paper: P95 error of 3.08/3.35/3.8/4.34 deg and mean 1.32/1.39/1.47/1.68
for gamma2 <= 5/10/15/20 — error grows with the threshold while reuse
opportunity grows too; gamma2 = 10 is the chosen crossover.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import STRICT, emit
from repro.experiments.reuse_eval import GAMMA2_VALUES, format_table4, run_table4


@pytest.mark.benchmark(group="table4")
def test_table4_gamma2(benchmark, bench_context):
    result = benchmark.pedantic(
        run_table4, args=(bench_context,), rounds=1, iterations=1
    )
    emit(format_table4(result))
    if not STRICT:
        return  # tiny smoke mode: tables only, no trained-quality checks

    stats = result.stats
    # Reuse opportunity grows (weakly) with the threshold.
    fractions = [stats[g]["reuse_fraction"] for g in GAMMA2_VALUES]
    assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))

    # Errors on reused frames stay bounded and grow (weakly) with gamma2.
    means = [stats[g]["mean"] for g in GAMMA2_VALUES if not math.isnan(stats[g]["mean"])]
    assert means, "no reused frames at any threshold"
    assert means == sorted(means) or max(means) - min(means) < 1.5
    # Reused-frame mean error stays in the paper's low-degree band.
    assert means[0] < 6.0
