"""Observability overhead: tracing must not tax the serving runtime.

The tracer's contract is twofold.  First, tracing is *read-only*: a traced
run observes the same simulated fleet the untraced run produced, so every
simulated metric (goodput, miss rate, frame accounting) is bit-identical —
the "< 5% goodput regression" budget is met with exactly 0%.  Second, the
bookkeeping itself is cheap: recording spans into the ring buffer adds
only a small wall-clock cost on top of the event loop, measured here
best-of-N against the untraced baseline with a deliberately loose guard
(wall time on shared CI is noisy; the sim-side equality is the hard gate).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit
from repro.obs import NULL_OBS, Obs, ObsConfig
from repro.serve import ServeConfig, serve_fleet
from repro.system import table_to_text

#: Same predict-heavy regime as the serve-scaling bench: small reuse
#: threshold keeps the inference pool busy so span volume is realistic.
CONFIG = ServeConfig(
    n_sessions=32,
    duration_s=1.0,
    n_workers=2,
    reuse_displacement_deg=0.05,
    queue_budget_deadlines=0.8,
    seed=0,
)

#: Hard budget from the design doc: the enabled tracer may not cost the
#: runtime more than 5% of its goodput.  Simulated goodput is computed
#: from sim-time alone, so the regression is exactly zero by construction
#: — this bench is the regression test that keeps it that way.
GOODPUT_BUDGET = 0.05


def _best_of(fn, rounds: int = 5) -> float:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


@pytest.mark.benchmark(group="obs")
def test_enabled_tracer_goodput_regression_under_budget(benchmark):
    plain = serve_fleet(CONFIG)
    null_obs = serve_fleet(CONFIG, obs=NULL_OBS)
    traced_obs = Obs(ObsConfig())
    traced = benchmark.pedantic(
        lambda: serve_fleet(CONFIG, obs=traced_obs), rounds=1, iterations=1
    )

    rows = [
        ["untraced", f"{plain.predict_goodput_fps:.2f}",
         f"{plain.deadline_miss_rate:.2%}", str(plain.total_frames)],
        ["null-obs", f"{null_obs.predict_goodput_fps:.2f}",
         f"{null_obs.deadline_miss_rate:.2%}", str(null_obs.total_frames)],
        ["traced", f"{traced.predict_goodput_fps:.2f}",
         f"{traced.deadline_miss_rate:.2%}", str(traced.total_frames)],
    ]
    emit(table_to_text(["Mode", "Goodput/s", "Miss", "Frames"], rows))

    budget_floor = plain.predict_goodput_fps * (1.0 - GOODPUT_BUDGET)
    assert traced.predict_goodput_fps >= budget_floor
    # Read-only invariant: tracing never perturbs the simulation, so the
    # budget is met with zero regression, not merely within 5%.
    assert traced.predict_goodput_fps == plain.predict_goodput_fps
    assert null_obs.predict_goodput_fps == plain.predict_goodput_fps
    assert traced.summary() == plain.summary()
    assert len(traced_obs.tracer) > 0  # the traced run did record spans


@pytest.mark.benchmark(group="obs")
def test_tracer_wall_clock_overhead_is_modest(benchmark):
    def untraced():
        return serve_fleet(CONFIG)

    def traced():
        return serve_fleet(CONFIG, obs=Obs(ObsConfig()))

    benchmark.pedantic(traced, rounds=1, iterations=1)
    base_s = _best_of(untraced)
    traced_s = _best_of(traced)
    ratio = traced_s / base_s

    emit(table_to_text(
        ["Mode", "Wall(ms)", "Ratio"],
        [
            ["untraced", f"{base_s * 1e3:.1f}", "1.00x"],
            ["traced", f"{traced_s * 1e3:.1f}", f"{ratio:.2f}x"],
        ],
    ))
    # Loose guard: span recording is a few dict/list ops per event, far
    # below the event-loop cost; 2x headroom absorbs shared-CI noise.
    assert ratio < 2.0
