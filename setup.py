"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works on
offline machines whose setuptools cannot build PEP 660 editable wheels
(``python setup.py develop`` is the fallback).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "POLO: Process Only Where You Look — gaze-tracked foveated "
        "rendering co-design (ISCA 2025) reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
